"""Placement and migration engine (the bottom-right box of Fig. 7).

The engine is the component that actually instantiates tasks on nodes and
moves them: it owns the mapping from running task to hosting node, computes
remaining work when a task is migrated, and charges the migration penalty
(checkpointing the container, moving its state over the compute network and
restarting it on the target host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.workload import TaskRequest

#: fixed service interruption per migration (checkpoint + restore of the task).
MIGRATION_PENALTY_S = 2.0
#: state transfer bandwidth over the compute network, GB/s.
MIGRATION_BANDWIDTH_GBPS = 2.5


@dataclass
class Placement:
    """One running task placement."""

    request: TaskRequest
    node: str
    start_s: float
    expected_finish_s: float
    work_done_gops: float = 0.0
    #: work already banked when the current hosting segment began; progress
    #: on the current node accrues on top of this, never instead of it.
    segment_base_gops: float = 0.0
    migrations: int = 0

    @property
    def remaining_gops(self) -> float:
        return max(0.0, self.request.gops - self.work_done_gops)


@dataclass(frozen=True)
class MigrationEvent:
    """Record of one migration."""

    task_id: str
    time_s: float
    source: str
    target: str
    downtime_s: float
    remaining_gops: float


class PlacementEngine:
    """Owns task instantiation, progress accounting and migration."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._placements: Dict[str, Placement] = {}
        self._migrations: List[MigrationEvent] = []

    # ------------------------------------------------------------------ #
    # Instantiation / completion
    # ------------------------------------------------------------------ #
    def instantiate(self, request: TaskRequest, node_name: str, time_s: float) -> Placement:
        """Start a task on a node; reserves resources and predicts its finish."""
        if request.task_id in self._placements:
            raise KeyError(f"task {request.task_id!r} is already placed")
        node = self.cluster.node(node_name)
        node.reserve(request.task_id, request.cores, request.memory_gib)
        duration = node.execution_time_s(request.workload, request.gops, request.cores)
        placement = Placement(
            request=request,
            node=node_name,
            start_s=time_s,
            expected_finish_s=time_s + duration,
        )
        self._placements[request.task_id] = placement
        return placement

    def complete(self, task_id: str, time_s: float) -> Placement:
        """Finish a task: release its resources and return the final placement."""
        placement = self._require(task_id)
        node = self.cluster.node(placement.node)
        node.release(task_id)
        placement.work_done_gops = placement.request.gops
        del self._placements[task_id]
        return placement

    # ------------------------------------------------------------------ #
    # Migration
    # ------------------------------------------------------------------ #
    def advance_progress(self, task_id: str, time_s: float) -> float:
        """Update a task's completed work as of ``time_s``; returns remaining Gop.

        Progress is accounted from the post-migration baseline: work done on
        the current node accrues on top of ``segment_base_gops`` (everything
        banked before the segment began), so a task migrated several times
        never loses the progress of its earlier hosting segments.
        """
        placement = self._require(task_id)
        node = self.cluster.node(placement.node)
        elapsed = max(0.0, time_s - placement.start_s)
        rate = placement.request.gops / node.execution_time_s(
            placement.request.workload, placement.request.gops, placement.request.cores
        )
        placement.work_done_gops = min(
            placement.request.gops, placement.segment_base_gops + rate * elapsed
        )
        return placement.remaining_gops

    def migration_downtime_s(self, request: TaskRequest) -> float:
        """Checkpoint + state transfer + restart time for one task."""
        state_bytes = request.memory_gib * 1024**3
        transfer = state_bytes / (MIGRATION_BANDWIDTH_GBPS * 1e9)
        return MIGRATION_PENALTY_S + transfer

    def migrate(self, task_id: str, target_node: str, time_s: float) -> MigrationEvent:
        """Move a running task to a new node, charging the downtime."""
        placement = self._require(task_id)
        if placement.node == target_node:
            raise ValueError(f"task {task_id!r} is already on node {target_node!r}")
        remaining = self.advance_progress(task_id, time_s)
        source_node = self.cluster.node(placement.node)
        target = self.cluster.node(target_node)
        request = placement.request
        if not target.can_host(request.cores, request.memory_gib):
            raise ValueError(
                f"target node {target_node!r} cannot host task {task_id!r} "
                f"({request.cores} cores / {request.memory_gib} GiB)"
            )
        source_node.release(task_id)
        target.reserve(task_id, request.cores, request.memory_gib)
        downtime = self.migration_downtime_s(request)
        remaining_request = TaskRequest(
            task_id=request.task_id,
            arrival_s=request.arrival_s,
            workload=request.workload,
            gops=max(remaining, 1e-9),
            cores=request.cores,
            memory_gib=request.memory_gib,
            energy_weight=request.energy_weight,
            deadline_s=request.deadline_s,
            tenant=request.tenant,
        )
        new_duration = target.execution_time_s(
            remaining_request.workload, remaining_request.gops, remaining_request.cores
        )
        event = MigrationEvent(
            task_id=task_id,
            time_s=time_s,
            source=placement.node,
            target=target_node,
            downtime_s=downtime,
            remaining_gops=remaining,
        )
        placement.node = target_node
        placement.start_s = time_s + downtime
        placement.expected_finish_s = time_s + downtime + new_duration
        placement.work_done_gops = request.gops - remaining
        placement.segment_base_gops = placement.work_done_gops
        placement.migrations += 1
        self._migrations.append(event)
        return event

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def placement(self, task_id: str) -> Placement:
        return self._require(task_id)

    @property
    def running(self) -> List[Placement]:
        return list(self._placements.values())

    @property
    def migrations(self) -> Sequence[MigrationEvent]:
        return tuple(self._migrations)

    def _require(self, task_id: str) -> Placement:
        if task_id not in self._placements:
            raise KeyError(f"task {task_id!r} is not currently placed")
        return self._placements[task_id]
