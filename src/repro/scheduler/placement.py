"""Placement and migration engine (the bottom-right box of Fig. 7).

The engine is the component that actually instantiates tasks on nodes and
moves them: it owns the mapping from running task to hosting node, computes
remaining work when a task is migrated, and charges the migration penalty
(checkpointing the container, moving its state over the compute network and
restarting it on the target host).

Per-task numeric state (progress, segment baselines, energy, expected
finish) lives in a numpy structured :class:`TaskTable`; a
:class:`Placement` is a thin view over one row, so the simulator's
progress/energy accounting reads and writes array columns while every
existing consumer keeps the object API unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.workload import TaskRequest

#: fixed service interruption per migration (checkpoint + restore of the task).
MIGRATION_PENALTY_S = 2.0
#: state transfer bandwidth over the compute network, GB/s.
MIGRATION_BANDWIDTH_GBPS = 2.5

#: one row per placed task.  ``energy_j`` / ``segment_start_s`` /
#: ``first_start_s`` / ``completion_version`` are the simulator's per-task
#: accounting (folded into the same table so a run keeps no side dicts);
#: the rest is the placement state proper.
TASK_DTYPE = np.dtype(
    [
        ("start_s", np.float64),
        ("expected_finish_s", np.float64),
        ("work_done_gops", np.float64),
        ("segment_base_gops", np.float64),
        ("migrations", np.int64),
        ("energy_j", np.float64),
        ("segment_start_s", np.float64),
        ("first_start_s", np.float64),
        ("completion_version", np.int64),
        ("active", np.bool_),
    ]
)


class TaskTable:
    """Structured-array store for per-task placement/progress state.

    Rows are allocated on instantiation and recycled through a free list
    on completion; the array only ever grows (doubling), so its final
    ``nbytes`` is also its peak -- what the core-speed benchmark reports
    as the memory cost of the array core.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._table = np.zeros(capacity, dtype=TASK_DTYPE)
        self._refresh_columns()
        self._n_rows = 0
        self._free: List[int] = []
        #: per-row object companions (strings don't belong in the array).
        self.requests: List[Optional[TaskRequest]] = []
        self.node_names: List[Optional[str]] = []
        self.segment_nodes: List[Optional[str]] = []

    def _refresh_columns(self) -> None:
        table = self._table
        self.start_s = table["start_s"]
        self.expected_finish_s = table["expected_finish_s"]
        self.work_done_gops = table["work_done_gops"]
        self.segment_base_gops = table["segment_base_gops"]
        self.migrations = table["migrations"]
        self.energy_j = table["energy_j"]
        self.segment_start_s = table["segment_start_s"]
        self.first_start_s = table["first_start_s"]
        self.completion_version = table["completion_version"]
        self.active = table["active"]

    @property
    def nbytes(self) -> int:
        """Bytes allocated to the structured array (monotone, so == peak)."""
        return self._table.nbytes

    def alloc(self, request: TaskRequest) -> int:
        """Claim a zeroed row for a task; returns the row index."""
        if self._free:
            row = self._free.pop()
            self._table[row] = 0
            self.requests[row] = request
            self.node_names[row] = None
            self.segment_nodes[row] = None
        else:
            if self._n_rows == len(self._table):
                grown = np.zeros(2 * len(self._table), dtype=TASK_DTYPE)
                grown[: self._n_rows] = self._table[: self._n_rows]
                self._table = grown
                self._refresh_columns()
            row = self._n_rows
            self._n_rows += 1
            self.requests.append(request)
            self.node_names.append(None)
            self.segment_nodes.append(None)
        self.active[row] = True
        return row

    def alloc_started(
        self, request: TaskRequest, start_s: float, expected_finish_s: float
    ) -> int:
        """Claim a row initialised for a fresh placement, in one write.

        Equivalent to :meth:`alloc` followed by the per-field start
        assignments, but the whole record (timings, zeroed accounting,
        active flag) lands as a single structured-row store -- the
        instantiation hot path's version of :meth:`alloc`.
        """
        if self._free:
            row = self._free.pop()
            self.requests[row] = request
            self.node_names[row] = None
            self.segment_nodes[row] = None
        else:
            if self._n_rows == len(self._table):
                grown = np.zeros(2 * len(self._table), dtype=TASK_DTYPE)
                grown[: self._n_rows] = self._table[: self._n_rows]
                self._table = grown
                self._refresh_columns()
            row = self._n_rows
            self._n_rows += 1
            self.requests.append(request)
            self.node_names.append(None)
            self.segment_nodes.append(None)
        # (start_s, expected_finish_s, work_done, segment_base, migrations,
        #  energy, segment_start, first_start, completion_version, active)
        self._table[row] = (
            start_s, expected_finish_s, 0.0, 0.0, 0, 0.0, 0.0, start_s, 0, True
        )
        return row

    def free(self, row: int) -> None:
        """Return a row to the free list (its view must be detached first)."""
        self.active[row] = False
        self.requests[row] = None
        self.node_names[row] = None
        self.segment_nodes[row] = None
        self._free.append(row)

    def row_record(self, row: int) -> np.void:
        """A copy of one row (test seam for view/array round-trip checks)."""
        return np.void(self._table[row])


class Placement:
    """One running task placement -- a view over a :class:`TaskTable` row.

    Constructing one directly (the historical dataclass signature) backs
    it with a private single-row table, so standalone placements built by
    tests or tools behave identically to engine-owned views.
    """

    __slots__ = ("_t", "_row", "request")

    def __init__(
        self,
        request: TaskRequest,
        node: str,
        start_s: float,
        expected_finish_s: float,
        work_done_gops: float = 0.0,
        segment_base_gops: float = 0.0,
        migrations: int = 0,
    ) -> None:
        table = TaskTable(capacity=1)
        row = table.alloc(request)
        table.node_names[row] = node
        table.start_s[row] = start_s
        table.expected_finish_s[row] = expected_finish_s
        table.work_done_gops[row] = work_done_gops
        table.segment_base_gops[row] = segment_base_gops
        table.migrations[row] = migrations
        self._t = table
        self._row = row
        self.request = request

    @classmethod
    def _view(cls, table: TaskTable, row: int, request: TaskRequest) -> "Placement":
        view = object.__new__(cls)
        view._t = table
        view._row = row
        view.request = request
        return view

    def _detach(self, into: Optional[TaskTable] = None) -> None:
        """Rebind this view to a private copy of its row.

        Called on completion before the engine recycles the row: callers
        holding the placement keep reading the task's final state.

        Args:
            into: table to copy the row into; the engine passes its
                retired-rows table so the hot path never allocates a
                whole single-row table per completion.  ``None`` builds a
                private one (standalone placements detached by tests).
        """
        source = self._t
        source_row = self._row
        table = into if into is not None else TaskTable(capacity=1)
        row = table.alloc(self.request)
        table._table[row] = source._table[source_row]
        table.node_names[row] = source.node_names[source_row]
        table.segment_nodes[row] = source.segment_nodes[source_row]
        self._t = table
        self._row = row

    # -- placement state proper ---------------------------------------- #
    @property
    def node(self) -> str:
        return self._t.node_names[self._row]

    @node.setter
    def node(self, value: str) -> None:
        self._t.node_names[self._row] = value

    @property
    def start_s(self) -> float:
        return float(self._t.start_s[self._row])

    @start_s.setter
    def start_s(self, value: float) -> None:
        self._t.start_s[self._row] = value

    @property
    def expected_finish_s(self) -> float:
        return float(self._t.expected_finish_s[self._row])

    @expected_finish_s.setter
    def expected_finish_s(self, value: float) -> None:
        self._t.expected_finish_s[self._row] = value

    @property
    def work_done_gops(self) -> float:
        return float(self._t.work_done_gops[self._row])

    @work_done_gops.setter
    def work_done_gops(self, value: float) -> None:
        self._t.work_done_gops[self._row] = value

    @property
    def segment_base_gops(self) -> float:
        """Work already banked when the current hosting segment began.

        Progress on the current node accrues on top of this, never
        instead of it.
        """
        return float(self._t.segment_base_gops[self._row])

    @segment_base_gops.setter
    def segment_base_gops(self, value: float) -> None:
        self._t.segment_base_gops[self._row] = value

    @property
    def migrations(self) -> int:
        return int(self._t.migrations[self._row])

    @migrations.setter
    def migrations(self, value: int) -> None:
        self._t.migrations[self._row] = value

    @property
    def remaining_gops(self) -> float:
        return max(0.0, self.request.gops - self.work_done_gops)

    # -- simulator accounting (same row, same table) -------------------- #
    @property
    def energy_j(self) -> float:
        return float(self._t.energy_j[self._row])

    @energy_j.setter
    def energy_j(self, value: float) -> None:
        self._t.energy_j[self._row] = value

    @property
    def segment_start_s(self) -> float:
        return float(self._t.segment_start_s[self._row])

    @property
    def segment_node(self) -> Optional[str]:
        return self._t.segment_nodes[self._row]

    def set_segment(self, start_s: float, node: str) -> None:
        self._t.segment_start_s[self._row] = start_s
        self._t.segment_nodes[self._row] = node

    @property
    def first_start_s(self) -> float:
        return float(self._t.first_start_s[self._row])

    @property
    def completion_version(self) -> int:
        return int(self._t.completion_version[self._row])

    def bump_completion_version(self) -> int:
        version = int(self._t.completion_version[self._row]) + 1
        self._t.completion_version[self._row] = version
        return version

    def row_record(self) -> np.void:
        """A copy of the backing row (view/array round-trip test seam)."""
        return self._t.row_record(self._row)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Placement({self.request.task_id!r}, node={self.node!r}, "
            f"start_s={self.start_s}, expected_finish_s={self.expected_finish_s})"
        )


@dataclass(frozen=True)
class MigrationEvent:
    """Record of one migration."""

    task_id: str
    time_s: float
    source: str
    target: str
    downtime_s: float
    remaining_gops: float


class PlacementEngine:
    """Owns task instantiation, progress accounting and migration."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.table = TaskTable()
        #: completed tasks detach their final row into here (rows are
        #: never recycled), so a completion costs one row copy instead of
        #: a fresh single-row table allocation.
        self._retired = TaskTable()
        self._placements: Dict[str, Placement] = {}
        self._migrations: List[MigrationEvent] = []

    # ------------------------------------------------------------------ #
    # Instantiation / completion
    # ------------------------------------------------------------------ #
    def instantiate(self, request: TaskRequest, node_name: str, time_s: float) -> Placement:
        """Start a task on a node; reserves resources and predicts its finish."""
        task_id = request.task_id
        if task_id in self._placements:
            raise KeyError(f"task {task_id!r} is already placed")
        node = self.cluster._nodes.get(node_name)
        if node is None:
            node = self.cluster.node(node_name)  # raises the standard error
        node.reserve(task_id, request.cores, request.memory_gib)
        duration = node.execution_time_s(request.workload, request.gops, request.cores)
        table = self.table
        row = table.alloc_started(request, time_s, time_s + duration)
        table.node_names[row] = node_name
        placement = Placement._view(table, row, request)
        self._placements[task_id] = placement
        return placement

    def complete(self, task_id: str, time_s: float) -> Placement:
        """Finish a task: release its resources and return the final placement.

        The returned placement is detached onto a private row copy (in the
        engine's retired-rows table), so it stays valid (frozen in its
        final state) after the engine recycles the task's table row.
        """
        placement = self._require(task_id)
        node = self.cluster._nodes[placement.node]
        node.release(task_id)
        placement.work_done_gops = placement.request.gops
        row = placement._row
        placement._detach(into=self._retired)
        self.table.free(row)
        del self._placements[task_id]
        return placement

    # ------------------------------------------------------------------ #
    # Migration
    # ------------------------------------------------------------------ #
    def advance_progress(self, task_id: str, time_s: float) -> float:
        """Update a task's completed work as of ``time_s``; returns remaining Gop.

        Progress is accounted from the post-migration baseline: work done on
        the current node accrues on top of ``segment_base_gops`` (everything
        banked before the segment began), so a task migrated several times
        never loses the progress of its earlier hosting segments.
        """
        placement = self._require(task_id)
        node = self.cluster.node(placement.node)
        elapsed = max(0.0, time_s - placement.start_s)
        rate = placement.request.gops / node.execution_time_s(
            placement.request.workload, placement.request.gops, placement.request.cores
        )
        placement.work_done_gops = min(
            placement.request.gops, placement.segment_base_gops + rate * elapsed
        )
        return placement.remaining_gops

    def migration_downtime_s(self, request: TaskRequest) -> float:
        """Checkpoint + state transfer + restart time for one task."""
        state_bytes = request.memory_gib * 1024**3
        transfer = state_bytes / (MIGRATION_BANDWIDTH_GBPS * 1e9)
        return MIGRATION_PENALTY_S + transfer

    def migrate(self, task_id: str, target_node: str, time_s: float) -> MigrationEvent:
        """Move a running task to a new node, charging the downtime."""
        placement = self._require(task_id)
        if placement.node == target_node:
            raise ValueError(f"task {task_id!r} is already on node {target_node!r}")
        remaining = self.advance_progress(task_id, time_s)
        source_node = self.cluster.node(placement.node)
        target = self.cluster.node(target_node)
        request = placement.request
        if not target.can_host(request.cores, request.memory_gib):
            raise ValueError(
                f"target node {target_node!r} cannot host task {task_id!r} "
                f"({request.cores} cores / {request.memory_gib} GiB)"
            )
        source_node.release(task_id)
        target.reserve(task_id, request.cores, request.memory_gib)
        downtime = self.migration_downtime_s(request)
        remaining_request = TaskRequest(
            task_id=request.task_id,
            arrival_s=request.arrival_s,
            workload=request.workload,
            gops=max(remaining, 1e-9),
            cores=request.cores,
            memory_gib=request.memory_gib,
            energy_weight=request.energy_weight,
            deadline_s=request.deadline_s,
            tenant=request.tenant,
        )
        new_duration = target.execution_time_s(
            remaining_request.workload, remaining_request.gops, remaining_request.cores
        )
        event = MigrationEvent(
            task_id=task_id,
            time_s=time_s,
            source=placement.node,
            target=target_node,
            downtime_s=downtime,
            remaining_gops=remaining,
        )
        placement.node = target_node
        placement.start_s = time_s + downtime
        placement.expected_finish_s = time_s + downtime + new_duration
        placement.work_done_gops = request.gops - remaining
        placement.segment_base_gops = placement.work_done_gops
        placement.migrations += 1
        self._migrations.append(event)
        return event

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def array_nbytes(self) -> int:
        """Bytes in the engine's structured tables (live + retired rows)."""
        return self.table.nbytes + self._retired.nbytes

    def placement(self, task_id: str) -> Placement:
        return self._require(task_id)

    def get(self, task_id: str) -> Optional[Placement]:
        """The live placement for a task, or None when it is not placed."""
        return self._placements.get(task_id)

    @property
    def running(self) -> List[Placement]:
        return list(self._placements.values())

    @property
    def migrations(self) -> Sequence[MigrationEvent]:
        return tuple(self._migrations)

    def _require(self, task_id: str) -> Placement:
        if task_id not in self._placements:
            raise KeyError(f"task {task_id!r} is not currently placed")
        return self._placements[task_id]
