"""HEATS modeling component: learn per-node performance and energy models.

Fig. 7's *Modeling* box runs "software probing (workloads)" followed by a
"learning phase".  The reproduction does the same thing with an explicit
two-step campaign:

1. **Probing** -- run small probe tasks of each workload kind, at several
   sizes, on every node of the cluster, recording the observed run time and
   energy (with measurement noise, because real probes are noisy).
2. **Learning** -- fit, per (node, workload kind), a linear model
   ``time ≈ a * gops / cores_share`` and ``energy ≈ b * gops + c`` by least
   squares over the probe observations.

The learned :class:`PredictionModelSet` is what the scheduler queries when
scoring candidate nodes; it never reads the ground-truth profile directly,
so prediction error is part of the simulated behaviour, as it is in the real
system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.workload import TaskRequest


@dataclass(frozen=True)
class ProbeObservation:
    """One probe run on one node."""

    node: str
    workload: WorkloadKind
    gops: float
    cores: int
    observed_time_s: float
    observed_energy_j: float


@dataclass
class NodeModel:
    """Learned per-node linear predictors, one pair per workload kind."""

    node: str
    time_seconds_per_gop: Dict[WorkloadKind, float] = field(default_factory=dict)
    energy_joules_per_gop: Dict[WorkloadKind, float] = field(default_factory=dict)
    energy_intercept_j: Dict[WorkloadKind, float] = field(default_factory=dict)
    node_cores: int = 1

    def predict_time_s(self, request: TaskRequest) -> float:
        """Predicted run time of a request on this node."""
        if request.workload not in self.time_seconds_per_gop:
            raise KeyError(
                f"node {self.node} has no learned model for workload {request.workload.value}"
            )
        per_gop = self.time_seconds_per_gop[request.workload]
        share = min(1.0, request.cores / self.node_cores)
        if share <= 0:
            raise ValueError("core share must be positive")
        return per_gop * request.gops / share

    def predict_pair(self, request: TaskRequest) -> Tuple[float, float]:
        """(time_s, energy_j) with one workload lookup per map.

        The scoring hot path's fused form of :meth:`predict_time_s` +
        :meth:`predict_energy_j`: identical arithmetic (so identical
        floats), minus the repeated membership checks and method calls.
        """
        workload = request.workload
        per_gop = self.time_seconds_per_gop.get(workload)
        if per_gop is None:
            raise KeyError(
                f"node {self.node} has no learned model for workload {workload.value}"
            )
        share = request.cores / self.node_cores
        if share > 1.0:
            share = 1.0
        if share <= 0:
            raise ValueError("core share must be positive")
        gops = request.gops
        energy = self.energy_joules_per_gop[workload] * gops + self.energy_intercept_j[workload]
        if energy < 0.0:
            energy = 0.0
        return (per_gop * gops / share, energy)

    def predict_energy_j(self, request: TaskRequest) -> float:
        if request.workload not in self.energy_joules_per_gop:
            raise KeyError(
                f"node {self.node} has no learned model for workload {request.workload.value}"
            )
        slope = self.energy_joules_per_gop[request.workload]
        intercept = self.energy_intercept_j[request.workload]
        return max(0.0, slope * request.gops + intercept)


class PredictionModelSet:
    """All learned node models, keyed by node name."""

    def __init__(self, models: Mapping[str, NodeModel]) -> None:
        if not models:
            raise ValueError("model set must not be empty")
        self._models = dict(models)
        #: lazily built per-workload scoring parameters (see
        #: :meth:`flat_for`); cleared whenever membership changes.
        self._flat: Dict[WorkloadKind, Dict[str, Tuple[float, float, float, int]]] = {}

    def model(self, node_name: str) -> NodeModel:
        if node_name not in self._models:
            raise KeyError(f"no learned model for node {node_name!r}")
        return self._models[node_name]

    def get(self, node_name: str) -> Optional[NodeModel]:
        """The node's model, or None when none was learned (hot-path
        alternative to a ``in`` check followed by :meth:`model`)."""
        return self._models.get(node_name)

    def flat_for(self, workload: WorkloadKind) -> Dict[str, Tuple[float, float, float, int]]:
        """Scoring parameters for one workload, flattened per node.

        Maps ``node -> (time_s_per_gop, energy_slope_j_per_gop,
        energy_intercept_j, node_cores)`` for exactly the nodes holding a
        learned model of ``workload`` -- the scoring hot path reads one
        dict entry per candidate instead of three per-model map lookups.
        Built lazily and invalidated on :meth:`add`/:meth:`remove`; the
        per-model parameter maps themselves are written only when models
        are (re)learned, which always goes through those methods.
        """
        flat = self._flat.get(workload)
        if flat is None:
            flat = {
                name: (
                    model.time_seconds_per_gop[workload],
                    model.energy_joules_per_gop[workload],
                    model.energy_intercept_j[workload],
                    model.node_cores,
                )
                for name, model in self._models.items()
                if workload in model.time_seconds_per_gop
            }
            self._flat[workload] = flat
        return flat

    def add(self, model: NodeModel) -> None:
        """Merge a newly learned node model (elastic scale-up).

        Args:
            model: the model for a node joining the cluster; replaces any
                stale model recorded under the same node name.
        """
        self._models[model.node] = model
        self._flat.clear()

    def remove(self, node_name: str) -> None:
        """Drop a node's model (elastic scale-down).

        Args:
            node_name: the departing node; unknown names are ignored so
                removal is idempotent.
        """
        self._models.pop(node_name, None)
        self._flat.clear()

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._models

    def nodes(self) -> List[str]:
        return list(self._models)

    def predict(self, node_name: str, request: TaskRequest) -> Tuple[float, float]:
        """(time_s, energy_j) prediction for placing ``request`` on a node."""
        model = self.model(node_name)
        return model.predict_time_s(request), model.predict_energy_j(request)


#: process-wide count of probing campaigns run; deployment sessions record
#: deltas of it so warm-model reuse ("no re-profiling") is assertable.
_campaign_runs = 0


def profiling_run_count() -> int:
    """How many probing campaigns have run in this process.

    Returns:
        The process-wide :meth:`ProfilingCampaign.run` invocation count.
    """
    return _campaign_runs


class ProfilingCampaign:
    """Runs the probing phase and fits the prediction models."""

    #: probe sizes in Gop used for every (node, workload) pair.
    PROBE_SIZES = (10.0, 50.0, 200.0, 800.0)

    def __init__(
        self,
        cluster: "Cluster | Sequence[ClusterNode]",
        noise_fraction: float = 0.05,
        seed: int = 7,
        probe_cores: int = 1,
    ) -> None:
        # ``cluster`` may be a Cluster or any iterable of nodes: probing a
        # single node joining an elastic shard must not require wrapping it
        # in a throwaway Cluster (which would subscribe a stray listener).
        if not (0.0 <= noise_fraction < 1.0):
            raise ValueError("noise fraction must be in [0, 1)")
        if probe_cores <= 0:
            raise ValueError("probes need at least one core")
        self.cluster = cluster
        self.noise_fraction = noise_fraction
        self.probe_cores = probe_cores
        self.rng = np.random.default_rng(seed)
        self.observations: List[ProbeObservation] = []

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def probe_node(self, node: ClusterNode, workload: WorkloadKind) -> List[ProbeObservation]:
        """Run the probe battery for one workload kind on one node."""
        observations: List[ProbeObservation] = []
        cores = min(self.probe_cores, node.spec.cores)
        for gops in self.PROBE_SIZES:
            true_time = node.execution_time_s(workload, gops, cores)
            true_energy = node.energy_for(workload, gops, cores)
            time_noise = 1.0 + self.rng.normal(0.0, self.noise_fraction)
            energy_noise = 1.0 + self.rng.normal(0.0, self.noise_fraction)
            observations.append(
                ProbeObservation(
                    node=node.name,
                    workload=workload,
                    gops=gops,
                    cores=cores,
                    observed_time_s=max(1e-9, true_time * time_noise),
                    observed_energy_j=max(0.0, true_energy * energy_noise),
                )
            )
        self.observations.extend(observations)
        return observations

    def run(self, workloads: Optional[Sequence[WorkloadKind]] = None) -> "ProfilingCampaign":
        """Probe every node for every workload kind."""
        global _campaign_runs
        _campaign_runs += 1
        workloads = list(workloads) if workloads is not None else list(WorkloadKind)
        for node in self.cluster:
            for workload in workloads:
                self.probe_node(node, workload)
        return self

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def fit(self) -> PredictionModelSet:
        """Least-squares fit of the per-(node, workload) linear predictors."""
        if not self.observations:
            raise RuntimeError("run the probing phase before fitting models")
        models: Dict[str, NodeModel] = {}
        for node in self.cluster:
            models[node.name] = NodeModel(node=node.name, node_cores=node.spec.cores)
        grouped: Dict[Tuple[str, WorkloadKind], List[ProbeObservation]] = {}
        for observation in self.observations:
            grouped.setdefault((observation.node, observation.workload), []).append(observation)
        for (node_name, workload), group in grouped.items():
            gops = np.array([o.gops for o in group])
            cores = np.array([o.cores for o in group], dtype=float)
            node_cores = models[node_name].node_cores
            share = np.minimum(1.0, cores / node_cores)
            times = np.array([o.observed_time_s for o in group])
            energies = np.array([o.observed_energy_j for o in group])
            # time = a * gops / share  ->  a by least squares through origin.
            predictor = gops / share
            a = float(np.dot(predictor, times) / np.dot(predictor, predictor))
            # energy = b * gops + c  ->  ordinary least squares.
            design = np.vstack([gops, np.ones_like(gops)]).T
            (b, c), *_ = np.linalg.lstsq(design, energies, rcond=None)
            model = models[node_name]
            model.time_seconds_per_gop[workload] = max(a, 1e-12)
            model.energy_joules_per_gop[workload] = float(b)
            model.energy_intercept_j[workload] = float(c)
        return PredictionModelSet(models)

    def prediction_error(self, models: PredictionModelSet) -> Dict[str, float]:
        """Mean absolute percentage error of the time model per node."""
        errors: Dict[str, List[float]] = {}
        for observation in self.observations:
            request = TaskRequest(
                task_id="probe",
                arrival_s=0.0,
                workload=observation.workload,
                gops=observation.gops,
                cores=observation.cores,
                memory_gib=0.1,
            )
            predicted, _ = models.predict(observation.node, request)
            errors.setdefault(observation.node, []).append(
                abs(predicted - observation.observed_time_s) / observation.observed_time_s
            )
        return {node: float(np.mean(values)) for node, values in errors.items()}
