"""Trace-driven workload generation and chaos fault-injection.

The last ROADMAP subsystem: adversarial conditions for everything the
rest of the stack claims to survive.  Two layers, one spec:

* **Workload generation** -- composable arrival processes
  (:class:`PoissonArrivals`, :class:`DiurnalArrivals`,
  :class:`FlashCrowdArrivals`, replayable :class:`RecordedTrace` with a
  lossless JSON round-trip), heavy-tailed :class:`BoundedPareto`
  request-size/deadline samplers, and tenant churn, all seeded through
  :class:`~repro.core.seeding.SeedPolicy` so equal specs yield
  bit-identical workloads.
* **Chaos injection** -- a :class:`ChaosSchedule` of timed faults (node
  failure, thermal throttle, regional price spike, shard partition)
  applied through the existing reschedule/elastic-topology seams by a
  :class:`ChaosEngine`, emitting ``chaos.<event>`` trace spans.

Both are driven by a frozen, validated :class:`ScenarioSpec` and run
through :func:`run_scenario` (or
:meth:`repro.api.deployment.Deployment.run_scenario`) against any
backend.  :func:`conservation_violations` checks the guarding
invariants; see ``docs/scenarios.md`` for the full catalogue.

The cluster-level chaos layer shares its seeded fault-probability model
(:class:`~repro.runtime.fault_tolerance.FaultModel`) with the task-level
:class:`~repro.runtime.fault_tolerance.FaultInjector`.
"""

from repro.runtime.fault_tolerance import FaultModel
from repro.scenarios.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    RecordedTrace,
)
from repro.scenarios.chaos import (
    ChaosEngine,
    ChaosInjectionRecord,
    ChaosReport,
    ChaosScheduler,
    ClusterActuator,
    FederationActuator,
)
from repro.scenarios.samplers import BoundedPareto, bounded_pareto
from repro.scenarios.spec import (
    ARRIVAL_KINDS,
    CHAOS_KINDS,
    ArrivalSpec,
    ChaosEventSpec,
    ChaosSchedule,
    ParetoSpec,
    ScenarioSpec,
    TenantTrafficSpec,
)
from repro.scenarios.runner import (
    ScenarioOutcome,
    chaos_session,
    conservation_violations,
    run_scenario,
)
from repro.scenarios.workload import build_workload

__all__ = [
    "ARRIVAL_KINDS",
    "CHAOS_KINDS",
    "ArrivalProcess",
    "ArrivalSpec",
    "BoundedPareto",
    "ChaosEngine",
    "ChaosEventSpec",
    "ChaosInjectionRecord",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosScheduler",
    "ClusterActuator",
    "DiurnalArrivals",
    "FaultModel",
    "FederationActuator",
    "FlashCrowdArrivals",
    "ParetoSpec",
    "PoissonArrivals",
    "RecordedTrace",
    "ScenarioOutcome",
    "ScenarioSpec",
    "TenantTrafficSpec",
    "bounded_pareto",
    "build_workload",
    "chaos_session",
    "conservation_violations",
    "run_scenario",
]
