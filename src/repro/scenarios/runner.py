"""Run a scenario against a deployment and check its invariants.

:func:`run_scenario` is the one-call entry point (also exposed as
:meth:`repro.api.deployment.Deployment.run_scenario`): materialise the
spec's workload, wrap the backend's scheduler in a
:class:`~repro.scenarios.chaos.ChaosScheduler` for the duration of one
serve call, and hand back a :class:`ScenarioOutcome` bundling the
serving report with the chaos report.

The chaos RNG is derived from the spec's seed policy with a fixed rule
(``probe_seed(base, 1)``), deliberately disjoint from the workload
streams (see :mod:`repro.scenarios.workload`), so adding or removing
chaos events never changes the request stream and vice versa.

:func:`conservation_violations` encodes the invariant the whole
subsystem is guarded by: every offered request is accounted for exactly
once (completed, rejected, or dropped), per tenant and overall, and no
completion is attributed to a node after chaos removed it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

import numpy as np

from repro.scenarios.chaos import (
    ChaosEngine,
    ChaosReport,
    ChaosScheduler,
    ClusterActuator,
    FederationActuator,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import build_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.deployment import Deployment
    from repro.serving.batching import BatchPolicy
    from repro.serving.loop import ServingReport, ServingWorkload

__all__ = ["ScenarioOutcome", "chaos_session", "conservation_violations", "run_scenario"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything one scenario run produced.

    Args:
        spec: the scenario that ran.
        workload: the materialised request stream (bit-identical for
            equal specs).
        report: the serving report from the deployment.
        chaos: what the chaos engine actually did.
    """

    spec: ScenarioSpec
    workload: "ServingWorkload"
    report: "ServingReport"
    chaos: ChaosReport


def _chaos_rng(spec: ScenarioSpec) -> np.random.Generator:
    """The scenario's chaos stream: ``probe_seed(base, 1)`` by rule."""
    return np.random.default_rng(spec.seed.probe_seed(spec.seed.base, 1))


@contextmanager
def chaos_session(
    deployment: "Deployment", spec: ScenarioSpec
) -> Iterator[ChaosEngine]:
    """Wrap a deployment's scheduler in chaos for one ``serve`` call.

    Picks the actuator matching the backend (federation when the backend
    has one, bare cluster otherwise), swaps the scheduler for a
    :class:`~repro.scenarios.chaos.ChaosScheduler`, and -- no matter how
    the run ends -- restores the original scheduler and closes every
    open chaos window so the deployment stays reusable.

    Args:
        deployment: the deployment whose next serve call gets chaos.
        spec: the scenario providing the schedule and seed policy.

    Yields:
        The live :class:`~repro.scenarios.chaos.ChaosEngine` (read its
        :meth:`~repro.scenarios.chaos.ChaosEngine.report` after the run).
    """
    backend = deployment.backend
    federation = getattr(backend, "federation", None)
    if federation is not None:
        actuator = FederationActuator(federation)
        host, attribute = federation, "scheduler"
    else:
        actuator = ClusterActuator(backend.cluster)
        host, attribute = backend, "scheduler"
    engine = ChaosEngine(
        spec.chaos, actuator, _chaos_rng(spec), tracer=deployment.tracer
    )
    inner = getattr(host, attribute)
    setattr(host, attribute, ChaosScheduler(inner, engine))
    try:
        yield engine
    finally:
        setattr(host, attribute, inner)
        engine.finish(spec.duration_s)


def run_scenario(
    deployment: "Deployment",
    spec: ScenarioSpec,
    batch_policy: Optional["BatchPolicy"] = None,
) -> ScenarioOutcome:
    """Serve a scenario's workload with its chaos schedule applied.

    Args:
        deployment: the deployment to run against (any backend).
        spec: the scenario; validated here, all errors at once.
        batch_policy: optional batching override for the serve call.

    Returns:
        The :class:`ScenarioOutcome`; equal specs on equally-seeded
        deployments reproduce it bit-identically.

    Raises:
        SpecValidationError: when the spec fails validation.
    """
    spec.check()
    workload = build_workload(spec)
    with chaos_session(deployment, spec) as engine:
        report = deployment.serve(workload, batch_policy=batch_policy)
    return ScenarioOutcome(
        spec=spec, workload=workload, report=report, chaos=engine.report()
    )


def conservation_violations(outcome: ScenarioOutcome) -> List[str]:
    """Check the scenario invariants; return every violation found.

    Checked, overall and per tenant:

    * request conservation: ``offered == completed + rejected + dropped``
      once the run has drained (the serving loop runs to completion, so
      nothing is left in flight);
    * offered matches the materialised workload exactly;
    * no completion is attributed to a node after chaos removed it;
    * SLA accounting is internally consistent
      (``deadline_hits + deadline_misses == completed`` per tenant).

    Args:
        outcome: a finished scenario run.

    Returns:
        Human-readable violation strings; empty when every invariant
        holds.
    """
    violations: List[str] = []
    report = outcome.report
    if report.offered != len(outcome.workload.requests):
        violations.append(
            f"offered {report.offered} != workload size "
            f"{len(outcome.workload.requests)}"
        )
    if report.offered != report.completed + report.rejected + report.dropped:
        violations.append(
            f"conservation: offered {report.offered} != completed "
            f"{report.completed} + rejected {report.rejected} + dropped "
            f"{report.dropped}"
        )
    for name, tenant in report.tenant_reports.items():
        if tenant.offered != tenant.completed + tenant.rejected + tenant.dropped:
            violations.append(
                f"conservation[{name}]: offered {tenant.offered} != completed "
                f"{tenant.completed} + rejected {tenant.rejected} + dropped "
                f"{tenant.dropped}"
            )
        if tenant.deadline_hits + tenant.deadline_misses != tenant.completed:
            violations.append(
                f"sla[{name}]: hits {tenant.deadline_hits} + misses "
                f"{tenant.deadline_misses} != completed {tenant.completed}"
            )
    removed_at = dict(outcome.chaos.dead_nodes)
    for task in report.simulation.completed:
        final_node = task.nodes[-1] if task.nodes else None
        if final_node in removed_at and task.finish_s > removed_at[final_node]:
            violations.append(
                f"dead-node completion: {task.task_id} finished on "
                f"{final_node} at {task.finish_s:.1f}s but the node was "
                f"removed at {removed_at[final_node]:.1f}s"
            )
    return violations
