"""Composable arrival processes: Poisson, diurnal, flash crowd, traces.

Every process is an inhomogeneous Poisson stream described by a rate
function ``rate(t)`` over a bounded window, realised with Lewis-Shedler
thinning: candidate instants are drawn from a homogeneous stream at
``peak_rate`` and each is accepted with probability ``rate(t) /
peak_rate``.  One algorithm for every shape keeps draw counts stable per
candidate, so two runs with equal seeds produce bit-identical arrival
streams -- the property the scenario replay invariants lean on.

:class:`RecordedTrace` closes the loop: any process can be *recorded*
into an explicit timestamp list (:meth:`RecordedTrace.record`), shipped
as JSON (:meth:`RecordedTrace.to_json` / :meth:`RecordedTrace.from_json`),
and replayed exactly -- the round trip is lossless because timestamps are
serialised as full-precision floats.
"""

from __future__ import annotations

import json
import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "RecordedTrace",
]


class ArrivalProcess:
    """Base class: an inhomogeneous Poisson arrival stream.

    Subclasses define :meth:`rate` and :attr:`peak_rate`;
    :meth:`generate` realises the stream by thinning.
    """

    def rate(self, time_s: float) -> float:
        """Instantaneous arrival rate (requests per second) at ``time_s``.

        Args:
            time_s: instant inside the generation window.

        Returns:
            The rate in requests per second (non-negative).
        """
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` over any window (the thinning cap)."""
        raise NotImplementedError

    def expected_count(self, duration_s: float) -> float:
        """Expected number of arrivals over ``[0, duration_s)``.

        Integrated numerically on a fine grid; exact for the piecewise-
        constant shapes and accurate to the grid for smooth ones.

        Args:
            duration_s: length of the window.

        Returns:
            The integral of :meth:`rate` over the window.
        """
        if duration_s <= 0:
            return 0.0
        steps = max(1000, int(duration_s * 10))
        grid = np.linspace(0.0, duration_s, steps, endpoint=False)
        width = duration_s / steps
        return float(sum(self.rate(float(t)) for t in grid) * width)

    def generate(self, duration_s: float, rng: np.random.Generator) -> List[float]:
        """Realise one arrival stream over ``[0, duration_s)``.

        Args:
            duration_s: length of the generation window.
            rng: the seeded generator driving the thinning draws.

        Returns:
            Strictly ordered arrival instants inside the window.
        """
        peak = self.peak_rate
        if peak <= 0 or duration_s <= 0:
            return []
        out: List[float] = []
        time_s = 0.0
        while True:
            time_s += float(rng.exponential(1.0 / peak))
            if time_s >= duration_s:
                break
            if float(rng.random()) * peak <= self.rate(time_s):
                out.append(time_s)
        return out


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant offered rate.

    Args:
        rate_rps: the constant offered rate in requests per second.
    """

    def __init__(self, rate_rps: float) -> None:
        if rate_rps < 0:
            raise ValueError("offered rate must be non-negative")
        self.rate_rps = rate_rps

    def rate(self, time_s: float) -> float:
        """Constant rate, independent of time.

        Args:
            time_s: unused (homogeneous process).

        Returns:
            The configured rate.
        """
        return self.rate_rps

    @property
    def peak_rate(self) -> float:
        """The constant rate is its own peak."""
        return self.rate_rps


class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day/night cycle around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2 pi (t + phase) / period))``
    -- with ``amplitude`` in [0, 1] the rate never goes negative.

    Args:
        base_rps: the mean offered rate.
        amplitude: relative swing in [0, 1] (0 = flat, 1 = rate touches 0).
        period_s: cycle length in simulated seconds.
        phase_s: time offset of the cycle start.
    """

    def __init__(
        self,
        base_rps: float,
        amplitude: float = 0.5,
        period_s: float = 86400.0,
        phase_s: float = 0.0,
    ) -> None:
        if base_rps < 0:
            raise ValueError("base rate must be non-negative")
        if not (0.0 <= amplitude <= 1.0):
            raise ValueError("amplitude must be within [0, 1]")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.base_rps = base_rps
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s

    def rate(self, time_s: float) -> float:
        """The sinusoidal rate at ``time_s``.

        Args:
            time_s: instant inside the generation window.

        Returns:
            The instantaneous rate (never negative for amplitude <= 1).
        """
        angle = 2.0 * math.pi * (time_s + self.phase_s) / self.period_s
        return self.base_rps * (1.0 + self.amplitude * math.sin(angle))

    @property
    def peak_rate(self) -> float:
        """The crest of the sine: ``base * (1 + amplitude)``."""
        return self.base_rps * (1.0 + self.amplitude)


class FlashCrowdArrivals(ArrivalProcess):
    """A quiet base rate with one rectangular spike window.

    Args:
        base_rps: offered rate outside the spike.
        spike_rps: offered rate inside the spike window.
        spike_start_s: when the flash crowd begins.
        spike_duration_s: how long the flash crowd lasts.
    """

    def __init__(
        self,
        base_rps: float,
        spike_rps: float,
        spike_start_s: float,
        spike_duration_s: float,
    ) -> None:
        if base_rps < 0 or spike_rps < 0:
            raise ValueError("rates must be non-negative")
        if spike_start_s < 0 or spike_duration_s < 0:
            raise ValueError("spike window must be non-negative")
        self.base_rps = base_rps
        self.spike_rps = spike_rps
        self.spike_start_s = spike_start_s
        self.spike_duration_s = spike_duration_s

    def rate(self, time_s: float) -> float:
        """The piecewise-constant rate at ``time_s``.

        Args:
            time_s: instant inside the generation window.

        Returns:
            ``spike_rps`` inside the spike window, ``base_rps`` outside.
        """
        inside = (
            self.spike_start_s
            <= time_s
            < self.spike_start_s + self.spike_duration_s
        )
        return self.spike_rps if inside else self.base_rps

    @property
    def peak_rate(self) -> float:
        """The larger of the two plateau rates."""
        return max(self.base_rps, self.spike_rps)


class RecordedTrace(ArrivalProcess):
    """An explicit, replayable timestamp list (a recorded trace).

    Args:
        arrivals: non-decreasing arrival instants (seconds).
    """

    def __init__(self, arrivals: Sequence[float]) -> None:
        ordered = tuple(float(t) for t in arrivals)
        if any(t < 0 for t in ordered):
            raise ValueError("trace timestamps must be non-negative")
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("trace timestamps must be non-decreasing")
        self.arrivals: Tuple[float, ...] = ordered

    @classmethod
    def record(
        cls, process: ArrivalProcess, duration_s: float, seed: int
    ) -> "RecordedTrace":
        """Materialise any process into a replayable trace.

        Args:
            process: the arrival process to record.
            duration_s: length of the recording window.
            seed: RNG seed for the recording run.

        Returns:
            A trace that replays the recorded stream exactly.
        """
        rng = np.random.default_rng(seed)
        return cls(process.generate(duration_s, rng))

    def rate(self, time_s: float) -> float:
        """Empirical mean rate of the trace (used only for introspection).

        Args:
            time_s: unused; a trace has no closed-form rate function.

        Returns:
            Recorded arrivals divided by the trace span (0 for short traces).
        """
        if not self.arrivals:
            return 0.0
        span = self.arrivals[-1] if self.arrivals[-1] > 0 else 1.0
        return len(self.arrivals) / span

    @property
    def peak_rate(self) -> float:
        """The empirical mean rate (traces bypass thinning entirely)."""
        return self.rate(0.0)

    def expected_count(self, duration_s: float) -> float:
        """Exact count of recorded arrivals inside the window.

        Args:
            duration_s: length of the window.

        Returns:
            How many recorded timestamps fall in ``[0, duration_s)``.
        """
        return float(sum(1 for t in self.arrivals if t < duration_s))

    def generate(self, duration_s: float, rng: np.random.Generator) -> List[float]:
        """Replay the recorded timestamps (no randomness consumed).

        Args:
            duration_s: window bound; recorded instants past it are clipped.
            rng: unused; replay is deterministic by construction.

        Returns:
            The recorded instants inside ``[0, duration_s)``.
        """
        return [t for t in self.arrivals if t < duration_s]

    def to_json(self) -> str:
        """Serialise the trace as a JSON document.

        Timestamps are emitted with ``repr`` round-trip precision, so
        ``from_json(to_json())`` reproduces the trace bit-for-bit.

        Returns:
            A JSON object string with a ``arrivals`` array.
        """
        return json.dumps({"kind": "recorded_trace", "arrivals": list(self.arrivals)})

    @classmethod
    def from_json(cls, document: str) -> "RecordedTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Args:
            document: the JSON string produced by :meth:`to_json`.

        Returns:
            The reconstructed trace (bit-identical arrivals).
        """
        payload = json.loads(document)
        if payload.get("kind") != "recorded_trace":
            raise ValueError("not a recorded-trace document")
        return cls(payload["arrivals"])
