"""Heavy-tailed request-attribute samplers for scenario workloads.

Real serving traffic is heavy-tailed: most requests are small, a few are
enormous, and the tail dominates queueing behaviour (cf. the scale-free
heavy-tail analysis referenced from PAPERS.md).  A plain Pareto tail is
unusable in a bounded simulator -- one astronomically large request would
never finish -- so everything here samples from the *bounded* Pareto
distribution: a power-law body with hard floor ``lower`` and hard cap
``upper``, drawn by inverse-CDF so one uniform variate maps to exactly
one sample (stable draw counts keep scenario replays bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundedPareto", "bounded_pareto"]


def bounded_pareto(
    rng: np.random.Generator, alpha: float, lower: float, upper: float
) -> float:
    """Draw one bounded-Pareto sample by inverse-CDF.

    Args:
        rng: the seeded generator to consume exactly one uniform from.
        alpha: tail exponent; smaller means heavier tail.
        lower: hard floor of the support (the distribution's scale).
        upper: hard cap of the support.

    Returns:
        A sample in ``[lower, upper]``.
    """
    if alpha <= 0:
        raise ValueError("tail exponent must be positive")
    if not (0 < lower <= upper):
        raise ValueError("need 0 < lower <= upper")
    if lower == upper:
        rng.random()  # keep the draw count stable for degenerate bounds
        return lower
    u = rng.random()
    ratio = (lower / upper) ** alpha
    return lower * (1.0 - u * (1.0 - ratio)) ** (-1.0 / alpha)


@dataclass(frozen=True)
class BoundedPareto:
    """A reusable bounded-Pareto distribution (validated once).

    Args:
        alpha: tail exponent; smaller means heavier tail.
        lower: hard floor of the support.
        upper: hard cap of the support.
    """

    alpha: float = 1.5
    lower: float = 1.0
    upper: float = 8.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("tail exponent must be positive")
        if not (0 < self.lower <= self.upper):
            raise ValueError("need 0 < lower <= upper")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one sample (consumes exactly one uniform variate).

        Args:
            rng: the seeded generator to draw from.

        Returns:
            A sample in ``[lower, upper]``.
        """
        return bounded_pareto(rng, self.alpha, self.lower, self.upper)

    @property
    def mean(self) -> float:
        """Analytic mean of the bounded-Pareto distribution."""
        a, low, high = self.alpha, self.lower, self.upper
        if low == high:
            return low
        if a == 1.0:
            return (low * high / (high - low)) * float(np.log(high / low))
        ratio = (low / high) ** a
        return (low ** a / (1.0 - ratio)) * (a / (a - 1.0)) * (
            low ** (1.0 - a) - high ** (1.0 - a)
        )
