"""The scenario spec tree: frozen, validated, JSON-round-trippable.

Mirrors :mod:`repro.api.spec`'s contract: every section is a frozen
dataclass, construction never raises on semantic problems, and
``validate()`` returns *every* issue at once as path-tagged
:class:`~repro.api.spec.SpecIssue` records (``ScenarioSpec.check()``
raises one :class:`~repro.api.spec.SpecValidationError` listing them
all).  ``to_dict``/``from_dict`` and the JSON helpers are lossless, so a
scenario can be committed next to the deployment spec that runs it.

The tree::

    ScenarioSpec
    |-- traffic: (TenantTrafficSpec, ...)   one entry per tenant
    |     |-- arrival: ArrivalSpec          poisson | diurnal | flash_crowd | trace
    |     |-- endpoint_mix                  endpoint-name -> weight
    |     `-- join_s / leave_s              tenant churn window
    |-- chaos: ChaosSchedule                timed fault injections
    |     `-- events: (ChaosEventSpec, ...)
    |-- sizes / deadlines: ParetoSpec       heavy-tailed request attributes
    `-- seed: SeedPolicy                    every RNG stream derives from it
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.api.spec import SpecIssue, SpecValidationError
from repro.core.seeding import SeedPolicy
from repro.serving.endpoints import SERVABLE_ENDPOINTS

__all__ = [
    "ARRIVAL_KINDS",
    "CHAOS_KINDS",
    "ArrivalSpec",
    "ChaosEventSpec",
    "ChaosSchedule",
    "ParetoSpec",
    "ScenarioSpec",
    "TenantTrafficSpec",
]

#: the arrival-process shapes :meth:`ArrivalSpec.build` understands.
ARRIVAL_KINDS = ("poisson", "diurnal", "flash_crowd", "trace")

#: the chaos injections :class:`~repro.scenarios.chaos.ChaosEngine` applies.
CHAOS_KINDS = ("node_failure", "thermal_throttle", "price_spike", "partition")

#: chaos kinds that describe a window (and therefore need a duration).
_WINDOWED_KINDS = ("thermal_throttle", "price_spike", "partition")


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of one tenant's arrival process.

    Args:
        kind: one of :data:`ARRIVAL_KINDS`.
        rate_rps: base offered rate (all kinds except ``trace``).
        amplitude: diurnal swing in [0, 1] (``diurnal`` only).
        period_s: diurnal cycle length (``diurnal`` only).
        spike_rps: flash-crowd plateau rate (``flash_crowd`` only).
        spike_start_s: flash-crowd onset (``flash_crowd`` only).
        spike_duration_s: flash-crowd length (``flash_crowd`` only).
        trace: explicit non-decreasing timestamps (``trace`` only).
    """

    kind: str = "poisson"
    rate_rps: float = 20.0
    amplitude: float = 0.5
    period_s: float = 120.0
    spike_rps: float = 100.0
    spike_start_s: float = 10.0
    spike_duration_s: float = 10.0
    trace: Tuple[float, ...] = ()

    def validate(self, path: str = "arrival") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: dotted location prefix for the issue records.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.kind not in ARRIVAL_KINDS:
            issues.append(
                SpecIssue(path + ".kind", f"unknown arrival kind {self.kind!r}; "
                          f"expected one of {ARRIVAL_KINDS}")
            )
        if self.rate_rps < 0:
            issues.append(SpecIssue(path + ".rate_rps", "offered rate must be >= 0"))
        if not (0.0 <= self.amplitude <= 1.0):
            issues.append(SpecIssue(path + ".amplitude", "amplitude must be in [0, 1]"))
        if self.period_s <= 0:
            issues.append(SpecIssue(path + ".period_s", "period must be positive"))
        if self.spike_rps < 0:
            issues.append(SpecIssue(path + ".spike_rps", "spike rate must be >= 0"))
        if self.spike_start_s < 0 or self.spike_duration_s < 0:
            issues.append(
                SpecIssue(path + ".spike_start_s", "spike window must be non-negative")
            )
        if self.kind == "trace":
            ordered = all(b >= a for a, b in zip(self.trace, self.trace[1:]))
            if not ordered or any(t < 0 for t in self.trace):
                issues.append(
                    SpecIssue(path + ".trace",
                              "trace timestamps must be non-negative and non-decreasing")
                )
        return issues

    def build(self):
        """Instantiate the arrival process this section describes.

        Returns:
            The matching :class:`~repro.scenarios.arrivals.ArrivalProcess`.
        """
        from repro.scenarios.arrivals import (
            DiurnalArrivals,
            FlashCrowdArrivals,
            PoissonArrivals,
            RecordedTrace,
        )

        if self.kind == "poisson":
            return PoissonArrivals(self.rate_rps)
        if self.kind == "diurnal":
            return DiurnalArrivals(
                self.rate_rps, amplitude=self.amplitude, period_s=self.period_s
            )
        if self.kind == "flash_crowd":
            return FlashCrowdArrivals(
                self.rate_rps,
                self.spike_rps,
                self.spike_start_s,
                self.spike_duration_s,
            )
        if self.kind == "trace":
            return RecordedTrace(self.trace)
        raise ValueError(f"unknown arrival kind {self.kind!r}")


@dataclass(frozen=True)
class ParetoSpec:
    """Bounded-Pareto parameters for a heavy-tailed request attribute.

    Args:
        alpha: tail exponent (smaller = heavier tail).
        lower: hard floor of the multiplier.
        upper: hard cap of the multiplier.
    """

    alpha: float = 1.5
    lower: float = 1.0
    upper: float = 8.0

    def validate(self, path: str = "pareto") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: dotted location prefix for the issue records.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.alpha <= 0:
            issues.append(SpecIssue(path + ".alpha", "tail exponent must be positive"))
        if not (0 < self.lower <= self.upper):
            issues.append(SpecIssue(path + ".lower", "need 0 < lower <= upper"))
        return issues


@dataclass(frozen=True)
class TenantTrafficSpec:
    """One tenant's contract plus its traffic shape.

    Args:
        name: unique tenant name.
        arrival: the tenant's arrival process.
        endpoint_mix: ``(endpoint name, relative weight)`` pairs.
        join_s: when the tenant starts offering traffic (tenant churn).
        leave_s: when the tenant stops (None = end of scenario).
        rate_limit_rps: gateway token-bucket refill rate.
        burst: gateway token-bucket burst size.
        energy_weight: the tenant's energy/performance trade-off in [0, 1].
        latency_slo_s: per-request latency SLO (None = best effort).
        region: preferred region for affinity seeding (None = no preference).
    """

    name: str = "tenant"
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    endpoint_mix: Tuple[Tuple[str, float], ...] = (("ml_inference", 1.0),)
    join_s: float = 0.0
    leave_s: Optional[float] = None
    rate_limit_rps: float = 50.0
    burst: int = 20
    energy_weight: float = 0.5
    latency_slo_s: Optional[float] = None
    region: Optional[str] = None

    def validate(self, path: str = "traffic") -> List[SpecIssue]:
        """Collect every problem with this section and its arrival.

        Args:
            path: dotted location prefix for the issue records.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if not self.name:
            issues.append(SpecIssue(path + ".name", "tenant name must be non-empty"))
        issues.extend(self.arrival.validate(path + ".arrival"))
        if not self.endpoint_mix:
            issues.append(
                SpecIssue(path + ".endpoint_mix", "endpoint mix must be non-empty")
            )
        for endpoint_name, weight in self.endpoint_mix:
            if endpoint_name not in SERVABLE_ENDPOINTS:
                issues.append(
                    SpecIssue(path + ".endpoint_mix",
                              f"unknown endpoint {endpoint_name!r}; expected one of "
                              f"{sorted(SERVABLE_ENDPOINTS)}")
                )
            if weight <= 0:
                issues.append(
                    SpecIssue(path + ".endpoint_mix",
                              f"weight for {endpoint_name!r} must be positive")
                )
        if self.join_s < 0:
            issues.append(SpecIssue(path + ".join_s", "join time must be >= 0"))
        if self.leave_s is not None and self.leave_s <= self.join_s:
            issues.append(
                SpecIssue(path + ".leave_s", "leave time must be after join time")
            )
        if self.rate_limit_rps <= 0:
            issues.append(
                SpecIssue(path + ".rate_limit_rps", "rate limit must be positive")
            )
        if self.burst <= 0:
            issues.append(SpecIssue(path + ".burst", "burst must be positive"))
        if not (0.0 <= self.energy_weight <= 1.0):
            issues.append(
                SpecIssue(path + ".energy_weight", "energy weight must be in [0, 1]")
            )
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            issues.append(
                SpecIssue(path + ".latency_slo_s", "latency SLO must be positive")
            )
        return issues


@dataclass(frozen=True)
class ChaosEventSpec:
    """One timed fault injection.

    Args:
        kind: one of :data:`CHAOS_KINDS`.
        at_s: simulated instant the injection triggers (applied at the
            first reschedule heartbeat at or after it).
        duration_s: window length for windowed kinds (throttle, price
            spike, partition); ignored by ``node_failure`` (permanent).
        target: the node (``node_failure`` / ``thermal_throttle``) or
            shard (``price_spike`` / ``partition``) to hit; None picks a
            seeded-random eligible victim.
        magnitude: price multiplier for ``price_spike``.
        probability: chance the injection actually fires, drawn once at
            trigger time from the shared
            :class:`~repro.runtime.fault_tolerance.FaultModel` stream.
    """

    kind: str = "node_failure"
    at_s: float = 0.0
    duration_s: float = 0.0
    target: Optional[str] = None
    magnitude: float = 3.0
    probability: float = 1.0

    def validate(self, path: str = "chaos") -> List[SpecIssue]:
        """Collect every problem with this event.

        Args:
            path: dotted location prefix for the issue records.

        Returns:
            All issues found (empty when the event is valid).
        """
        issues: List[SpecIssue] = []
        if self.kind not in CHAOS_KINDS:
            issues.append(
                SpecIssue(path + ".kind", f"unknown chaos kind {self.kind!r}; "
                          f"expected one of {CHAOS_KINDS}")
            )
        if self.at_s < 0:
            issues.append(SpecIssue(path + ".at_s", "trigger time must be >= 0"))
        if self.duration_s < 0:
            issues.append(SpecIssue(path + ".duration_s", "duration must be >= 0"))
        if self.kind in _WINDOWED_KINDS and self.duration_s <= 0:
            issues.append(
                SpecIssue(path + ".duration_s",
                          f"{self.kind} describes a window and needs duration_s > 0")
            )
        if self.magnitude <= 0:
            issues.append(SpecIssue(path + ".magnitude", "magnitude must be positive"))
        if not (0.0 <= self.probability <= 1.0):
            issues.append(
                SpecIssue(path + ".probability", "probability must be in [0, 1]")
            )
        return issues


@dataclass(frozen=True)
class ChaosSchedule:
    """The ordered list of timed injections a scenario applies.

    Args:
        events: the injections; applied in trigger-time order.
    """

    events: Tuple[ChaosEventSpec, ...] = ()

    def validate(self, path: str = "chaos") -> List[SpecIssue]:
        """Collect every problem across all events.

        Args:
            path: dotted location prefix for the issue records.

        Returns:
            All issues found (empty when the schedule is valid).
        """
        issues: List[SpecIssue] = []
        for index, event in enumerate(self.events):
            issues.extend(event.validate(f"{path}.events[{index}]"))
        return issues

    def ordered(self) -> Tuple[ChaosEventSpec, ...]:
        """The events sorted by trigger time (stable for equal instants).

        Returns:
            The schedule in application order.
        """
        return tuple(sorted(self.events, key=lambda e: e.at_s))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete adversarial-workload scenario: traffic plus chaos.

    Args:
        name: scenario name (shown in reports).
        duration_s: length of the arrival window.
        traffic: one entry per tenant.
        chaos: the timed injection schedule.
        sizes: heavy-tailed per-request work multiplier (None = unit).
        deadlines: heavy-tailed deadline-margin multiplier (None = the
            endpoint's default deadline, unscaled).
        seed: the seed-derivation policy every scenario RNG stream
            (arrivals, attribute sampling, chaos) derives from.
    """

    name: str = "scenario"
    duration_s: float = 60.0
    traffic: Tuple[TenantTrafficSpec, ...] = (
        TenantTrafficSpec(),
    )
    chaos: ChaosSchedule = field(default_factory=ChaosSchedule)
    sizes: Optional[ParetoSpec] = None
    deadlines: Optional[ParetoSpec] = None
    seed: SeedPolicy = field(default_factory=SeedPolicy)

    def validate(self) -> List[SpecIssue]:
        """Collect every problem across the whole tree at once.

        Returns:
            All issues found, path-tagged (empty when the spec is valid).
        """
        issues: List[SpecIssue] = []
        if not self.name:
            issues.append(SpecIssue("scenario.name", "name must be non-empty"))
        if self.duration_s <= 0:
            issues.append(
                SpecIssue("scenario.duration_s", "duration must be positive")
            )
        if not self.traffic:
            issues.append(
                SpecIssue("scenario.traffic", "a scenario needs at least one tenant")
            )
        names = [tenant.name for tenant in self.traffic]
        if len(set(names)) != len(names):
            issues.append(
                SpecIssue("scenario.traffic", "tenant names must be unique")
            )
        for index, tenant in enumerate(self.traffic):
            issues.extend(tenant.validate(f"scenario.traffic[{index}]"))
            if tenant.join_s >= self.duration_s:
                issues.append(
                    SpecIssue(f"scenario.traffic[{index}].join_s",
                              "tenant joins at or after the scenario ends")
                )
        issues.extend(self.chaos.validate("scenario.chaos"))
        if self.sizes is not None:
            issues.extend(self.sizes.validate("scenario.sizes"))
        if self.deadlines is not None:
            issues.extend(self.deadlines.validate("scenario.deadlines"))
        return issues

    def check(self) -> "ScenarioSpec":
        """Validate and raise with *every* problem listed at once.

        Returns:
            This spec, for chaining.

        Raises:
            SpecValidationError: listing all validation issues.
        """
        issues = self.validate()
        if issues:
            raise SpecValidationError(issues)
        return self

    # ------------------------------------------------------------------ #
    # Lossless serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Render the whole tree as plain dicts/lists (JSON-ready).

        Returns:
            A nested dict that :meth:`from_dict` rebuilds losslessly.
        """
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "traffic": [
                {
                    "name": tenant.name,
                    "arrival": {
                        f.name: (
                            list(getattr(tenant.arrival, f.name))
                            if f.name == "trace"
                            else getattr(tenant.arrival, f.name)
                        )
                        for f in fields(ArrivalSpec)
                    },
                    "endpoint_mix": [
                        [name, weight] for name, weight in tenant.endpoint_mix
                    ],
                    "join_s": tenant.join_s,
                    "leave_s": tenant.leave_s,
                    "rate_limit_rps": tenant.rate_limit_rps,
                    "burst": tenant.burst,
                    "energy_weight": tenant.energy_weight,
                    "latency_slo_s": tenant.latency_slo_s,
                    "region": tenant.region,
                }
                for tenant in self.traffic
            ],
            "chaos": [
                {f.name: getattr(event, f.name) for f in fields(ChaosEventSpec)}
                for event in self.chaos.events
            ],
            "sizes": (
                {f.name: getattr(self.sizes, f.name) for f in fields(ParetoSpec)}
                if self.sizes is not None
                else None
            ),
            "deadlines": (
                {f.name: getattr(self.deadlines, f.name) for f in fields(ParetoSpec)}
                if self.deadlines is not None
                else None
            ),
            "seed": {
                "base": self.seed.base,
                "shard_stride": self.seed.shard_stride,
                "probe_stride": self.seed.probe_stride,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Shape problems (unknown keys, wrong types) are collected and
        raised together, mirroring :meth:`repro.api.spec.DeploymentSpec.from_dict`.

        Args:
            data: the nested dict to rebuild from.

        Returns:
            The reconstructed spec (validate separately via :meth:`check`).

        Raises:
            SpecValidationError: listing every shape problem at once.
        """
        issues: List[SpecIssue] = []
        known = {
            "name", "duration_s", "traffic", "chaos", "sizes", "deadlines", "seed"
        }
        for key in data:
            if key not in known:
                issues.append(SpecIssue(f"scenario.{key}", "unknown section"))

        def build_section(section_cls, payload, path):
            if payload is None:
                return None
            if not isinstance(payload, dict):
                issues.append(SpecIssue(path, "expected an object"))
                return section_cls()
            names = {f.name for f in fields(section_cls)}
            kwargs = {}
            for key, value in payload.items():
                if key not in names:
                    issues.append(SpecIssue(f"{path}.{key}", "unknown field"))
                    continue
                kwargs[key] = value
            try:
                return section_cls(**kwargs)
            except (TypeError, ValueError) as error:
                issues.append(SpecIssue(path, str(error)))
                return section_cls()

        traffic: List[TenantTrafficSpec] = []
        for index, entry in enumerate(data.get("traffic", []) or []):
            path = f"scenario.traffic[{index}]"
            if not isinstance(entry, dict):
                issues.append(SpecIssue(path, "expected an object"))
                continue
            entry = dict(entry)
            arrival_payload = entry.pop("arrival", None)
            if isinstance(arrival_payload, dict) and "trace" in arrival_payload:
                arrival_payload = dict(arrival_payload)
                arrival_payload["trace"] = tuple(arrival_payload["trace"])
            arrival = build_section(
                ArrivalSpec, arrival_payload, path + ".arrival"
            ) or ArrivalSpec()
            mix = entry.pop("endpoint_mix", None)
            if isinstance(mix, dict):
                mix = tuple(sorted(mix.items()))
            elif mix is not None:
                mix = tuple((str(n), float(w)) for n, w in mix)
            else:
                mix = (("ml_inference", 1.0),)
            tenant = build_section(TenantTrafficSpec, entry, path)
            if tenant is not None:
                traffic.append(replace(tenant, arrival=arrival, endpoint_mix=mix))

        events: List[ChaosEventSpec] = []
        for index, entry in enumerate(data.get("chaos", []) or []):
            event = build_section(
                ChaosEventSpec, entry, f"scenario.chaos.events[{index}]"
            )
            if event is not None:
                events.append(event)

        sizes = build_section(ParetoSpec, data.get("sizes"), "scenario.sizes")
        deadlines = build_section(
            ParetoSpec, data.get("deadlines"), "scenario.deadlines"
        )
        seed = build_section(SeedPolicy, data.get("seed"), "scenario.seed")
        if issues:
            raise SpecValidationError(issues)
        return cls(
            name=str(data.get("name", "scenario")),
            duration_s=float(data.get("duration_s", 60.0)),
            traffic=tuple(traffic) or (TenantTrafficSpec(),),
            chaos=ChaosSchedule(events=tuple(events)),
            sizes=sizes,
            deadlines=deadlines,
            seed=seed if seed is not None else SeedPolicy(),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialise the spec as JSON.

        Args:
            indent: pretty-print indentation.

        Returns:
            A JSON document :meth:`from_json` rebuilds losslessly.
        """
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output.

        Args:
            document: the JSON string.

        Returns:
            The reconstructed spec.
        """
        return cls.from_dict(json.loads(document))
