"""Materialise a :class:`ScenarioSpec` into a serving workload.

Every random stream is derived from the spec's
:class:`~repro.core.seeding.SeedPolicy` with a fixed rule, so the same
spec always yields the same workload bit-for-bit:

* tenant ``i`` arrival stream:   ``default_rng(seed.shard_seed(i))``
* tenant ``i`` attribute stream: ``default_rng(seed.probe_seed(seed.shard_seed(i), 0))``

Splitting arrivals and attributes into independent streams means adding
a size sampler (say) never perturbs *when* requests arrive -- only what
they look like -- which keeps replay diffs readable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.scenarios.samplers import BoundedPareto
from repro.scenarios.spec import ScenarioSpec, TenantTrafficSpec
from repro.serving.endpoints import ServableEndpoint, endpoint
from repro.serving.gateway import ServingRequest, Tenant
from repro.serving.loop import ServingWorkload

__all__ = ["build_workload"]


def _tenant_contract(traffic: TenantTrafficSpec) -> Tenant:
    """Build the gateway contract for one tenant section."""
    return Tenant(
        name=traffic.name,
        rate_limit_rps=traffic.rate_limit_rps,
        burst=traffic.burst,
        energy_weight=traffic.energy_weight,
        latency_slo_s=traffic.latency_slo_s,
        region=traffic.region,
    )


def _normalised_mix(
    traffic: TenantTrafficSpec,
) -> Tuple[Tuple[ServableEndpoint, ...], np.ndarray]:
    """Resolve the endpoint mix into endpoints plus normalised weights."""
    endpoints = tuple(endpoint(name) for name, _ in traffic.endpoint_mix)
    weights = np.asarray([w for _, w in traffic.endpoint_mix], dtype=float)
    return endpoints, weights / weights.sum()


def build_workload(spec: ScenarioSpec) -> ServingWorkload:
    """Generate the full request stream a scenario describes.

    Args:
        spec: a validated scenario spec (call :meth:`ScenarioSpec.check`
            first; this function assumes the tree is well-formed).

    Returns:
        A :class:`~repro.serving.loop.ServingWorkload` whose requests
        are globally sorted by arrival instant.  Equal specs produce
        bit-identical workloads.
    """
    requests: List[ServingRequest] = []
    tenants: List[Tenant] = []
    for index, traffic in enumerate(spec.traffic):
        tenants.append(_tenant_contract(traffic))
        tenant_seed = spec.seed.shard_seed(index)
        arrival_rng = np.random.default_rng(tenant_seed)
        attribute_rng = np.random.default_rng(spec.seed.probe_seed(tenant_seed, 0))

        window_end = spec.duration_s if traffic.leave_s is None else min(
            traffic.leave_s, spec.duration_s
        )
        window = window_end - traffic.join_s
        if window <= 0:
            continue
        offsets = traffic.arrival.build().generate(window, arrival_rng)

        endpoints, weights = _normalised_mix(traffic)
        sizes = BoundedPareto(**vars(spec.sizes)) if spec.sizes else None
        deadlines = BoundedPareto(**vars(spec.deadlines)) if spec.deadlines else None
        for k, offset in enumerate(offsets):
            arrival_s = traffic.join_s + offset
            choice = endpoints[
                int(attribute_rng.choice(len(endpoints), p=weights))
            ]
            gops = choice.gops_per_request
            if sizes is not None:
                gops *= sizes.sample(attribute_rng)
            margin = choice.default_deadline_s
            if deadlines is not None:
                margin *= deadlines.sample(attribute_rng)
            requests.append(
                ServingRequest(
                    request_id=f"{traffic.name}-{k:06d}",
                    tenant=traffic.name,
                    use_case=choice.name,
                    arrival_s=arrival_s,
                    workload=choice.workload,
                    gops=gops,
                    cores=choice.cores,
                    memory_gib=choice.memory_gib,
                    deadline_s=arrival_s + margin,
                )
            )
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return ServingWorkload(tenants=tuple(tenants), requests=tuple(requests))
