"""Cluster-level chaos injection through the existing scheduler seams.

Nothing in the simulator or federation knows about chaos.  The whole
layer rides on two seams that already exist:

* :class:`ChaosScheduler` wraps the real scheduler.  The simulator's
  reschedule heartbeat becomes the chaos clock -- every heartbeat first
  lets the :class:`ChaosEngine` trigger due injections and propose
  evacuation migrations, then runs the wrapped scheduler's own
  rescheduling pass (filtered so nothing lands on a blocked node).
  Placement of new requests is vetoed on blocked nodes the same way.
* An *actuator* adapts topology mutations to the backend at hand:
  :class:`ClusterActuator` speaks to a bare
  :class:`~repro.scheduler.cluster.Cluster`,
  :class:`FederationActuator` to a
  :class:`~repro.federation.federation.Federation` (which adds the
  shard-scoped injections: price spikes and partitions).

Injection kinds (see :data:`repro.scenarios.spec.CHAOS_KINDS`):

``node_failure``
    Permanent.  The victim is blocked, its tasks are evacuated over the
    following heartbeats, and the node is removed once idle -- so no
    completion is ever attributed to a dead node (an invariant the test
    suite checks).
``thermal_throttle``
    A window.  The victim accepts no new placements or migrations until
    the window closes; running tasks are untouched (heat slows intake,
    it does not kill work).
``price_spike``
    A window (federation only).  The shard's energy price is multiplied
    by ``magnitude`` and the scheduler's price normalisation rebuilt, so
    routing drifts away from the expensive region until restore.
``partition``
    A window (federation only).  The shard is drained (unreachable for
    routing, tasks evacuated) and reinstated at heal.

Every applied/skipped injection emits a ``chaos.<kind>`` trace event, so
the PR 8 live console and PR 6 trace summaries show faults inline with
the serving timeline.  Probabilistic events draw from the same seeded
:class:`~repro.runtime.fault_tolerance.FaultModel` the task-level
:class:`~repro.runtime.fault_tolerance.FaultInjector` uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.fault_tolerance import FaultModel
from repro.scenarios.spec import ChaosEventSpec, ChaosSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federation import Federation
    from repro.scheduler.cluster import Cluster
    from repro.scheduler.placement import Placement
    from repro.telemetry.trace import Tracer

__all__ = [
    "ChaosEngine",
    "ChaosInjectionRecord",
    "ChaosReport",
    "ChaosScheduler",
    "ClusterActuator",
    "FederationActuator",
]


@dataclass(frozen=True)
class ChaosInjectionRecord:
    """What actually happened to one scheduled injection.

    Args:
        kind: the injection kind.
        scheduled_s: the spec's trigger instant.
        time_s: the heartbeat instant the engine acted.
        target: the resolved victim (node or shard), if any.
        status: ``applied``, ``healed``, ``removed``, ``suppressed``
            (probability draw said no), or ``skipped`` (not applicable
            on this backend / no eligible victim).
        detail: human-readable explanation for skips and heals.
    """

    kind: str
    scheduled_s: float
    time_s: float
    target: Optional[str]
    status: str
    detail: str = ""


@dataclass(frozen=True)
class ChaosReport:
    """Everything the chaos engine did during one scenario run.

    Args:
        records: per-injection outcomes in action order.
        dead_nodes: ``(node name, removal instant)`` for every node a
            ``node_failure`` actually removed.
    """

    records: Tuple[ChaosInjectionRecord, ...] = ()
    dead_nodes: Tuple[Tuple[str, float], ...] = ()

    def applied(self, kind: Optional[str] = None) -> Tuple[ChaosInjectionRecord, ...]:
        """The injections that actually fired.

        Args:
            kind: restrict to one injection kind (None = all kinds).

        Returns:
            Records with status ``applied``, filtered by kind.
        """
        return tuple(
            r
            for r in self.records
            if r.status == "applied" and (kind is None or r.kind == kind)
        )


class ClusterActuator:
    """Topology mutations against a bare single cluster.

    Shard-scoped injections (price spikes, partitions) have no meaning
    here and report themselves unsupported, which the engine records as
    a skipped injection rather than an error.

    Args:
        cluster: the cluster the scenario runs on.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def failure_candidates(self) -> List[str]:
        """Nodes that may be killed without emptying the cluster.

        Returns:
            Node names, in cluster insertion order; empty when the
            cluster is at its one-node floor.
        """
        if len(self.cluster) <= 1:
            return []
        return [node.name for node in self.cluster]

    def remove_node(self, name: str) -> bool:
        """Try to remove an (evacuated) node.

        Args:
            name: the node to remove.

        Returns:
            True on removal; False while the node is still busy or the
            cluster refuses the shrink.
        """
        try:
            self.cluster.remove_node(name)
        except (ValueError, KeyError):
            return False
        return True

    def shard_names(self) -> List[str]:
        """Shards visible to shard-scoped injections (none here)."""
        return []

    def reprice(self, shard_name: str, multiplier: float) -> Optional[float]:
        """Unsupported on a single cluster.

        Args:
            shard_name: ignored.
            multiplier: ignored.

        Returns:
            None, signalling the injection should be skipped.
        """
        return None

    def restore_price(self, shard_name: str, price: float) -> None:
        """No-op counterpart of :meth:`reprice`."""

    def partition(self, shard_name: str) -> bool:
        """Unsupported on a single cluster.

        Args:
            shard_name: ignored.

        Returns:
            False, signalling the injection should be skipped.
        """
        return False

    def heal(self, shard_name: str) -> None:
        """No-op counterpart of :meth:`partition`."""


class FederationActuator:
    """Topology mutations against a federation (union of shards).

    Args:
        federation: the federation the scenario runs on.
    """

    def __init__(self, federation: "Federation") -> None:
        self.federation = federation

    def failure_candidates(self) -> List[str]:
        """Nodes whose shard stays above its one-node floor if they die.

        Returns:
            Node names across all shards with more than one node.
        """
        out: List[str] = []
        for shard in self.federation.shards:
            if len(shard.cluster) > 1:
                out.extend(node.name for node in shard.cluster)
        return out

    def remove_node(self, name: str) -> bool:
        """Try to shrink the owning shard by the (evacuated) node.

        Args:
            name: the node to remove.

        Returns:
            True on removal; False while the node is busy, unknown, or
            its shard is at the one-node floor.
        """
        try:
            shard_name = self.federation.scheduler.shard_of_node(name)
            return self.federation.shrink_node(shard_name, name) is not None
        except (ValueError, KeyError):
            return False

    def shard_names(self) -> List[str]:
        """All member shard names, in admission order."""
        return [shard.name for shard in self.federation.shards]

    def reprice(self, shard_name: str, multiplier: float) -> Optional[float]:
        """Multiply one shard's energy price.

        Args:
            shard_name: the shard whose region spikes.
            multiplier: factor applied to the current price.

        Returns:
            The pre-spike price (for restore), or None if the shard is
            unknown.
        """
        try:
            shard = self.federation.scheduler.shard(shard_name)
        except (ValueError, KeyError):
            return None
        previous = shard.profile.energy_price_per_kwh
        self.federation.reprice_shard(shard_name, previous * multiplier)
        return previous

    def restore_price(self, shard_name: str, price: float) -> None:
        """Put a shard's energy price back after a spike window.

        Args:
            shard_name: the shard to restore.
            price: the pre-spike price.
        """
        try:
            self.federation.reprice_shard(shard_name, price)
        except (ValueError, KeyError):
            pass

    def partition(self, shard_name: str) -> bool:
        """Cut a shard off from routing (drain without removal).

        Args:
            shard_name: the shard to partition.

        Returns:
            True when the drain began; False when the federation refuses
            (sole shard, already draining, unknown name).
        """
        if len(self.federation.shards) <= 1:
            return False
        try:
            self.federation.begin_drain(shard_name)
        except (ValueError, KeyError):
            return False
        return True

    def heal(self, shard_name: str) -> None:
        """Reinstate a partitioned shard into routing.

        Args:
            shard_name: the shard to heal.
        """
        try:
            self.federation.cancel_drain(shard_name)
        except (ValueError, KeyError):
            pass


class ChaosEngine:
    """Applies a :class:`~repro.scenarios.spec.ChaosSchedule` over a run.

    The engine is clocked by the simulator's reschedule heartbeat (via
    :class:`ChaosScheduler`), so injections land at the first heartbeat
    at or after their trigger instant -- the same granularity at which
    the wrapped scheduler itself observes the cluster.

    Args:
        schedule: the timed injections to apply.
        actuator: backend adapter (:class:`ClusterActuator` or
            :class:`FederationActuator`).
        rng: seeded generator for victim picks and probability draws.
        tracer: emits ``chaos.<event>`` spans (None = silent).
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        actuator,
        rng: np.random.Generator,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.actuator = actuator
        self.rng = rng
        self.tracer = tracer
        self._pending: List[ChaosEventSpec] = list(schedule.ordered())
        self._records: List[ChaosInjectionRecord] = []
        self._dead: List[Tuple[str, float]] = []
        # Node name -> reason; blocked nodes accept no placements and no
        # inbound migrations.
        self._blocked: Dict[str, str] = {}
        # Open windows, each (end_s, event, resolved target, restore payload).
        self._failing: Dict[str, ChaosEventSpec] = {}
        self._throttles: List[Tuple[float, str]] = []
        self._prices: List[Tuple[float, str, float]] = []
        self._partitions: List[Tuple[float, str]] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Queries used by the scheduler proxy
    # ------------------------------------------------------------------ #
    def is_blocked(self, node_name: str) -> bool:
        """Whether a node currently refuses placements and migrations.

        Args:
            node_name: the node to test.

        Returns:
            True while the node is failing or thermally throttled.
        """
        return node_name in self._blocked

    # ------------------------------------------------------------------ #
    # Heartbeat
    # ------------------------------------------------------------------ #
    def step(
        self,
        running: Sequence["Placement"],
        cluster: "Cluster",
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Advance chaos to ``time_s``; propose evacuation migrations.

        Called once per reschedule heartbeat, before the wrapped
        scheduler's own pass.

        Args:
            running: every live placement, as the simulator sees them.
            cluster: the cluster (or federation union) being served.
            time_s: the heartbeat instant.

        Returns:
            ``(task_id, target node)`` migrations evacuating failing
            nodes; applied by the simulator like any rescheduling
            decision.
        """
        self._close_windows(time_s)
        while self._pending and self._pending[0].at_s <= time_s:
            self._activate(self._pending.pop(0), running, cluster, time_s)
        decisions = self._evacuations(running, cluster)
        self._reap_idle_failures(running, time_s)
        return decisions

    def finish(self, time_s: float) -> None:
        """Close every still-open window so the backend stays reusable.

        Restores spiked prices, heals partitions, lifts throttles, and
        makes one last removal attempt for failing nodes (a node still
        busy at scenario end stays alive and is recorded as such).

        Args:
            time_s: the scenario end instant, used for heal records.
        """
        # The serving loop has already drained the tracer by the time the
        # session finishes; emitting here would bleed spans into the next
        # run's report, so end-of-run heals are recorded without spans.
        tracer, self.tracer = self.tracer, None
        try:
            self._finish(time_s)
        finally:
            self.tracer = tracer

    def _finish(self, time_s: float) -> None:
        for _, node in self._throttles:
            self._blocked.pop(node, None)
            self._record("thermal_throttle", time_s, time_s, node, "healed",
                         "window closed at scenario end")
        self._throttles.clear()
        for _, shard, price in self._prices:
            self.actuator.restore_price(shard, price)
            self._record("price_spike", time_s, time_s, shard, "healed",
                         "price restored at scenario end")
        self._prices.clear()
        for _, shard in self._partitions:
            self.actuator.heal(shard)
            self._record("partition", time_s, time_s, shard, "healed",
                         "healed at scenario end")
        self._partitions.clear()
        for node, event in list(self._failing.items()):
            if self.actuator.remove_node(node):
                self._dead.append((node, time_s))
                self._record(event.kind, event.at_s, time_s, node, "removed")
            else:
                self._record(event.kind, event.at_s, time_s, node, "skipped",
                             "victim still busy at scenario end; left alive")
            self._failing.pop(node, None)
            self._blocked.pop(node, None)

    def report(self) -> ChaosReport:
        """The run's injection outcomes.

        Returns:
            A frozen :class:`ChaosReport`.
        """
        return ChaosReport(
            records=tuple(self._records), dead_nodes=tuple(self._dead)
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _record(
        self,
        kind: str,
        scheduled_s: float,
        time_s: float,
        target: Optional[str],
        status: str,
        detail: str = "",
    ) -> None:
        self._records.append(
            ChaosInjectionRecord(kind, scheduled_s, time_s, target, status, detail)
        )
        if self.tracer is not None:
            suffix = {"applied": "", "removed": ".node_removed"}.get(status)
            if suffix is None:
                suffix = f".{status}"
            name = f"chaos.{kind}{suffix}" if status != "applied" else f"chaos.{kind}"
            self._seq += 1
            self.tracer.event(
                name,
                time_s,
                trace_id=f"chaos-{self._seq}",
                target=target or "",
                status=status,
                detail=detail,
            )

    def _fires(self, event: ChaosEventSpec) -> bool:
        """One seeded probability draw through the shared fault model."""
        fired, _ = FaultModel(
            fault_probability=event.probability, systematic_fraction=0.0
        ).draw(self.rng)
        return fired

    def _pick(self, candidates: List[str]) -> Optional[str]:
        if not candidates:
            return None
        ordered = sorted(candidates)
        return ordered[int(self.rng.integers(len(ordered)))]

    def _activate(
        self,
        event: ChaosEventSpec,
        running: Sequence["Placement"],
        cluster: "Cluster",
        time_s: float,
    ) -> None:
        if not self._fires(event):
            self._record(event.kind, event.at_s, time_s, event.target,
                         "suppressed", "probability draw said no")
            return
        if event.kind in ("node_failure", "thermal_throttle"):
            candidates = [
                name
                for name in self.actuator.failure_candidates()
                if name not in self._blocked
            ]
            if event.target is not None:
                candidates = [n for n in candidates if n == event.target]
            victim = self._pick(candidates)
            if victim is None:
                self._record(event.kind, event.at_s, time_s, event.target,
                             "skipped", "no eligible victim node")
                return
            self._blocked[victim] = event.kind
            if event.kind == "node_failure":
                self._failing[victim] = event
            else:
                self._throttles.append((time_s + event.duration_s, victim))
            self._record(event.kind, event.at_s, time_s, victim, "applied")
            return
        # Shard-scoped injections.
        shards = self.actuator.shard_names()
        if event.target is not None:
            shards = [s for s in shards if s == event.target]
        partitioned = {shard for _, shard in self._partitions}
        shards = [s for s in shards if s not in partitioned]
        victim = self._pick(shards)
        if victim is None:
            self._record(event.kind, event.at_s, time_s, event.target, "skipped",
                         "no eligible shard on this backend")
            return
        if event.kind == "price_spike":
            previous = self.actuator.reprice(victim, event.magnitude)
            if previous is None:
                self._record(event.kind, event.at_s, time_s, victim, "skipped",
                             "backend has no regional pricing")
                return
            self._prices.append((time_s + event.duration_s, victim, previous))
            self._record(event.kind, event.at_s, time_s, victim, "applied")
            return
        if not self.actuator.partition(victim):
            self._record(event.kind, event.at_s, time_s, victim, "skipped",
                         "shard cannot be partitioned")
            return
        self._partitions.append((time_s + event.duration_s, victim))
        self._record(event.kind, event.at_s, time_s, victim, "applied")

    def _close_windows(self, time_s: float) -> None:
        open_throttles: List[Tuple[float, str]] = []
        for end_s, node in self._throttles:
            if time_s >= end_s:
                self._blocked.pop(node, None)
                self._record("thermal_throttle", end_s, time_s, node, "healed")
            else:
                open_throttles.append((end_s, node))
        self._throttles = open_throttles
        open_prices: List[Tuple[float, str, float]] = []
        for end_s, shard, price in self._prices:
            if time_s >= end_s:
                self.actuator.restore_price(shard, price)
                self._record("price_spike", end_s, time_s, shard, "healed")
            else:
                open_prices.append((end_s, shard, price))
        self._prices = open_prices
        open_partitions: List[Tuple[float, str]] = []
        for end_s, shard in self._partitions:
            if time_s >= end_s:
                self.actuator.heal(shard)
                self._record("partition", end_s, time_s, shard, "healed")
            else:
                open_partitions.append((end_s, shard))
        self._partitions = open_partitions

    def _evacuations(
        self, running: Sequence["Placement"], cluster: "Cluster"
    ) -> List[Tuple[str, str]]:
        decisions: List[Tuple[str, str]] = []
        planned: Dict[str, int] = {}
        for placement in running:
            if placement.node not in self._failing:
                continue
            request = placement.request
            candidates = [
                node
                for node in cluster.feasible_nodes(request.cores, request.memory_gib)
                if node.name not in self._blocked
            ]
            if not candidates:
                continue
            # Spread this heartbeat's evacuations: fewest planned inbound
            # migrations wins, feasibility order breaks ties.
            target = min(candidates, key=lambda node: planned.get(node.name, 0))
            planned[target.name] = planned.get(target.name, 0) + 1
            decisions.append((request.task_id, target.name))
        return decisions

    def _reap_idle_failures(
        self, running: Sequence["Placement"], time_s: float
    ) -> None:
        occupied = {placement.node for placement in running}
        for node in list(self._failing):
            if node in occupied:
                continue
            event = self._failing[node]
            if self.actuator.remove_node(node):
                self._dead.append((node, time_s))
                self._failing.pop(node)
                self._blocked.pop(node, None)
                self._record(event.kind, event.at_s, time_s, node, "removed")


class ChaosScheduler:
    """Transparent scheduler wrapper that injects chaos at the seams.

    Placement and rescheduling pass through the wrapped scheduler;
    everything else (config, score cache, federation stats, autoscaler
    attachment, shard lookups) is delegated via ``__getattr__`` /
    ``__setattr__``, so the simulator, federation, and autoscaler all
    see the object they expect.

    Args:
        inner: the real scheduler to wrap.
        engine: the chaos engine clocking off this scheduler's
            heartbeats.
    """

    def __init__(self, inner, engine: ChaosEngine) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_engine", engine)

    @property
    def supports_rescheduling(self) -> bool:
        """Always True: the heartbeat is the chaos clock."""
        return True

    @property
    def inner(self):
        """The wrapped scheduler (for restore after a scenario run)."""
        return self._inner

    @property
    def name(self) -> str:
        """The wrapped scheduler's name with a ``chaos+`` prefix."""
        return "chaos+" + getattr(self._inner, "name", type(self._inner).__name__)

    def place(
        self, request, cluster: "Cluster", time_s: float
    ) -> Optional[str]:
        """Place through the wrapped scheduler, vetoing blocked nodes.

        Args:
            request: the task to place.
            cluster: the cluster to place into.
            time_s: simulation time of the placement attempt.

        Returns:
            The wrapped scheduler's choice, or None when that choice is
            currently blocked (the request queues and retries).
        """
        node = self._inner.place(request, cluster, time_s)
        if node is not None and self._engine.is_blocked(node):
            return None
        return node

    def reschedule(
        self,
        running: Sequence["Placement"],
        cluster: "Cluster",
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Chaos first, then the wrapped scheduler's own pass.

        Args:
            running: every live placement.
            cluster: the cluster being served.
            time_s: the heartbeat instant.

        Returns:
            Evacuation migrations plus the wrapped scheduler's
            migrations, minus any that target a blocked node, touch a
            task chaos already claimed this heartbeat, or touch a task
            still inside a previous migration's downtime window (its
            checkpoint is mid-transfer; moving it again is meaningless
            and breaks span accounting).
        """
        restarting = {
            placement.request.task_id
            for placement in running
            if placement.start_s > time_s
        }
        decisions = [
            decision
            for decision in self._engine.step(running, cluster, time_s)
            if decision[0] not in restarting
        ]
        claimed = {task_id for task_id, _ in decisions}
        if getattr(self._inner, "supports_rescheduling", False):
            for task_id, target in self._inner.reschedule(running, cluster, time_s):
                if (
                    task_id in claimed
                    or task_id in restarting
                    or self._engine.is_blocked(target)
                ):
                    continue
                decisions.append((task_id, target))
        return decisions

    def __getattr__(self, item):
        return getattr(object.__getattribute__(self, "_inner"), item)

    def __setattr__(self, key, value) -> None:
        setattr(object.__getattribute__(self, "_inner"), key, value)
