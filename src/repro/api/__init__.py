"""Declarative deployment API: spec in, reusable serving session out.

This package replaces the kwarg-explosion facade (`serve(workload,
cluster_scale=, use_score_cache=, batch_policy=, heats_config=, seed=,
num_shards=, autoscale=, autoscale_config=)`) with the shape production
schedulers are actually driven by:

* :mod:`repro.api.spec`       -- :class:`DeploymentSpec`, a frozen,
  validated, JSON/TOML-round-trippable tree of sections (topology,
  scheduler, serving, autoscale, telemetry) with preset factories and
  all-errors-at-once validation.
* :mod:`repro.api.backend`    -- the :class:`Backend` protocol and its
  three implementations (single cluster, federated, autoscaled), so the
  serve paths previously forked inside ``LegatoSystem.serve()`` are one
  polymorphic build step.
* :mod:`repro.api.deployment` -- :class:`Deployment`: build the backend
  once, then serve many workloads against warm state (profiled models,
  score caches, affinity pins, telemetry, elastic topology), with a
  context-manager lifecycle, an incremental per-tick report stream, and
  auditable session counters.

Entry points: ``Deployment.from_spec(spec)`` or
``LegatoSystem().deploy(spec)``.
"""

from repro.api.backend import (
    AutoscaledBackend,
    Backend,
    FederatedBackend,
    SingleClusterBackend,
    build_backend,
)
from repro.api.deployment import Deployment, ServingTick
from repro.api.spec import (
    PRESETS,
    AutoscaleSpec,
    DeploymentSpec,
    SchedulerSpec,
    ServingSpec,
    SpecIssue,
    SpecValidationError,
    TelemetrySpec,
    TopologySpec,
)
from repro.core.seeding import SeedPolicy

__all__ = [
    "AutoscaleSpec",
    "AutoscaledBackend",
    "Backend",
    "Deployment",
    "DeploymentSpec",
    "FederatedBackend",
    "PRESETS",
    "SchedulerSpec",
    "SeedPolicy",
    "ServingSpec",
    "ServingTick",
    "SingleClusterBackend",
    "SpecIssue",
    "SpecValidationError",
    "TelemetrySpec",
    "TopologySpec",
    "build_backend",
]
