"""The deployment session: build the backend once, serve many workloads.

The old facade rebuilt everything per call -- cluster, profiling
campaigns, score caches, telemetry -- which made "serve another workload
on the same deployment" cost a full cold start.  A :class:`Deployment`
inverts that: :meth:`Deployment.from_spec` validates the spec, builds
the backend exactly once (the only profiling the session ever pays for a
static topology), and then :meth:`serve` / :meth:`serve_iter` replay any
number of workloads against the warm state.  Session-level telemetry
(``deployment.serve_runs``, ``deployment.profiling_campaigns``) makes
the warm-reuse claim assertable rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.api.backend import Backend, build_backend
from repro.api.spec import DeploymentSpec
from repro.scheduler.modeling import profiling_run_count
from repro.serving.loop import ServingReport, ServingWorkload
from repro.serving.sla import percentile
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot
from repro.telemetry.trace import Tracer

#: session-counter names recorded on every deployment's bus.
SERVE_RUNS_METRIC = "deployment.serve_runs"
PROFILING_METRIC = "deployment.profiling_campaigns"


@dataclass(frozen=True)
class ServingTick:
    """One dashboard tick of a serving run's timeline.

    Produced by :meth:`Deployment.serve_iter`: the run's timeline cut
    into fixed windows, each summarising the arrivals and completions
    that fell inside it.
    """

    index: int
    start_s: float
    end_s: float
    arrivals: int
    completed: int
    cumulative_completed: int
    p50_latency_s: float
    p95_latency_s: float
    #: spans that *ended* inside this window, counted per stage name --
    #: populated only when the deployment traces (``telemetry.tracing``).
    stage_spans: Optional[Dict[str, int]] = None

    def summary(self) -> Dict[str, object]:
        """A compact dict rendering (one dashboard row).

        Returns:
            The tick's window bounds, counts, latency percentiles, and
            (when the run was traced) per-stage span counts.
        """
        rendered: Dict[str, object] = {
            "tick": self.index,
            "window_s": (round(self.start_s, 3), round(self.end_s, 3)),
            "arrivals": self.arrivals,
            "completed": self.completed,
            "cumulative_completed": self.cumulative_completed,
            "p50_latency_s": round(self.p50_latency_s, 3),
            "p95_latency_s": round(self.p95_latency_s, 3),
        }
        if self.stage_spans is not None:
            rendered["stage_spans"] = dict(sorted(self.stage_spans.items()))
        return rendered


class Deployment:
    """One built backend serving many workloads against warm state."""

    def __init__(
        self,
        spec: DeploymentSpec,
        backend: Backend,
        metrics: MetricsRegistry,
        system: Optional[object] = None,
    ) -> None:
        """Wrap an already-built backend (use :meth:`from_spec` instead).

        Args:
            spec: the validated spec the backend was built from.
            backend: the built backend.
            metrics: the session's metrics bus (always present; also the
                hot-path bus when the spec enables telemetry).
            system: the owning :class:`~repro.core.ecosystem.LegatoSystem`
                when deployed through ``LegatoSystem.deploy``; folded
                into :meth:`snapshot`.
        """
        self.spec = spec
        self.backend = backend
        self._metrics = metrics
        self._system = system
        self._closed = False
        self._last_report: Optional[ServingReport] = None
        #: the session's tracer; disabled (a no-op) unless the spec sets
        #: ``telemetry.tracing``.
        self.tracer: Tracer = getattr(backend, "tracer", None) or Tracer.disabled()
        #: the session's host-time phase profiler; disabled (a no-op)
        #: unless the spec sets ``telemetry.profiling``.
        self.profiler: PhaseProfiler = (
            getattr(backend, "profiler", None) or PhaseProfiler.disabled()
        )
        self._serve_runs = metrics.counter(SERVE_RUNS_METRIC)
        self._profilings = metrics.counter(PROFILING_METRIC)

    @classmethod
    def from_spec(
        cls, spec: DeploymentSpec, system: Optional[object] = None
    ) -> "Deployment":
        """Validate the spec and build the backend (the one cold start).

        Args:
            spec: the deployment spec; validated with every problem
                reported at once.
            system: optional owning facade, recorded for snapshots.

        Returns:
            A ready deployment session.

        Raises:
            SpecValidationError: listing every validation problem.
        """
        spec.check()
        metrics = MetricsRegistry(
            default_histogram_window=spec.telemetry.histogram_window
        )
        before = profiling_run_count()
        tracer = Tracer(enabled=spec.telemetry.tracing)
        profiler = PhaseProfiler(enabled=spec.telemetry.profiling)
        backend = build_backend(
            spec,
            metrics if spec.telemetry.enabled else None,
            tracer=tracer if spec.telemetry.tracing else None,
            profiler=profiler if spec.telemetry.profiling else None,
        )
        deployment = cls(spec, backend, metrics, system=system)
        deployment._profilings.inc(profiling_run_count() - before)
        return deployment

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Deployment":
        """Enter the context manager.

        Returns:
            This deployment.
        """
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Close the session on context exit.

        Args:
            exc_type: exception type, if the body raised.
            exc_value: exception value, if the body raised.
            traceback: traceback, if the body raised.
        """
        self.close()

    def close(self) -> None:
        """End the session; further serving raises.

        Closing is idempotent.  The backend's state (and the metrics
        bus) stay readable -- ``metrics()`` and ``snapshot()`` keep
        working -- so a closed deployment can still be audited.
        """
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the session was closed."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this deployment session is closed")

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(
        self, workload: ServingWorkload, batch_policy: Optional[object] = None
    ) -> ServingReport:
        """Serve one workload against the warm backend.

        Args:
            workload: tenants plus their request stream.
            batch_policy: optional
                :class:`~repro.serving.batching.BatchPolicy` override of
                the spec's batching section for this run only.

        Returns:
            The :class:`~repro.serving.loop.ServingReport` for this run.
        """
        self._ensure_open()
        before = profiling_run_count()
        report = self.backend.serve(workload, batch_policy=batch_policy)
        # A static topology profiles zero times here; an autoscaled run
        # legitimately probes nodes it grows, and the counter records it.
        self._profilings.inc(profiling_run_count() - before)
        self._serve_runs.inc()
        self._last_report = report
        return report

    def run_scenario(
        self, spec: object, batch_policy: Optional[object] = None
    ) -> object:
        """Serve a scenario: generated workload plus chaos injections.

        Materialises the scenario's request stream, applies its
        :class:`~repro.scenarios.spec.ChaosSchedule` through the
        backend's scheduler seams for the duration of one serve call,
        and restores the backend afterwards so the session stays warm
        and reusable.  Equal specs on equally-seeded deployments
        reproduce the outcome bit-identically.

        Args:
            spec: a :class:`~repro.scenarios.spec.ScenarioSpec`;
                validated here with every issue reported at once.
            batch_policy: optional
                :class:`~repro.serving.batching.BatchPolicy` override of
                the spec's batching section for this run only.

        Returns:
            The :class:`~repro.scenarios.runner.ScenarioOutcome`
            bundling the serving report with the chaos report.
        """
        # Imported lazily: repro.scenarios sits above repro.api in the
        # layering (its spec module imports repro.api.spec), so a
        # module-level import here would be a cycle.
        from repro.scenarios.runner import run_scenario

        return run_scenario(self, spec, batch_policy=batch_policy)

    def serve_iter(
        self,
        workload: ServingWorkload,
        tick_s: float = 5.0,
        batch_policy: Optional[object] = None,
    ) -> Iterator[ServingTick]:
        """Serve one workload and stream its timeline as dashboard ticks.

        The discrete-event run is executed in full (same path as
        :meth:`serve`; the complete report lands in :attr:`last_report`),
        then its timeline is replayed as fixed windows: arrivals from the
        workload, completions and latency percentiles from the report's
        per-member completion instants.

        Args:
            workload: tenants plus their request stream.
            tick_s: window width of the tick stream.
            batch_policy: optional per-run batching override.

        Returns:
            An iterator of :class:`ServingTick`, ordered by window start,
            covering the whole serving horizon.
        """
        if tick_s <= 0:
            raise ValueError("tick width must be positive")
        report = self.serve(workload, batch_policy=batch_policy)

        def ticks() -> Iterator[ServingTick]:
            arrivals = sorted(request.arrival_s for request in workload.requests)
            completed: List[Tuple[float, float]] = sorted(
                zip(report.completions_s, report.latencies_s)
            )
            # When the run was traced, bucket span *end* instants into the
            # same windows so each tick carries its per-stage activity.
            traced = report.trace_spans is not None
            stage_events: List[Tuple[float, str]] = (
                sorted(
                    (span.end_s, span.name)
                    for span in report.trace_spans
                    if span.end_s is not None
                )
                if traced
                else []
            )
            stage_pos = 0
            horizon = max(
                report.horizon_s,
                arrivals[-1] if arrivals else 0.0,
                completed[-1][0] if completed else 0.0,
            )
            cumulative = 0
            index = 0
            arrival_pos = 0
            completed_pos = 0
            while index * tick_s < horizon or index == 0:
                start = index * tick_s
                end = start + tick_s
                # The final window is closed on the right: an event landing
                # exactly on the horizon (e.g. the last completion when the
                # makespan is a multiple of the tick width) must not be
                # dropped between the half-open windows.
                last = end >= horizon
                arrived = 0
                while arrival_pos < len(arrivals) and (
                    last or arrivals[arrival_pos] < end
                ):
                    arrived += 1
                    arrival_pos += 1
                window_latencies: List[float] = []
                while completed_pos < len(completed) and (
                    last or completed[completed_pos][0] < end
                ):
                    window_latencies.append(completed[completed_pos][1])
                    completed_pos += 1
                cumulative += len(window_latencies)
                stage_spans: Optional[Dict[str, int]] = None
                if traced:
                    stage_spans = {}
                    while stage_pos < len(stage_events) and (
                        last or stage_events[stage_pos][0] < end
                    ):
                        name = stage_events[stage_pos][1]
                        stage_spans[name] = stage_spans.get(name, 0) + 1
                        stage_pos += 1
                yield ServingTick(
                    index=index,
                    start_s=start,
                    end_s=end,
                    arrivals=arrived,
                    completed=len(window_latencies),
                    cumulative_completed=cumulative,
                    p50_latency_s=percentile(window_latencies, 50),
                    p95_latency_s=percentile(window_latencies, 95),
                    stage_spans=stage_spans,
                )
                index += 1

        return ticks()

    @property
    def last_report(self) -> Optional[ServingReport]:
        """The most recent serving report, or None before the first run."""
        return self._last_report

    @property
    def serve_runs(self) -> int:
        """How many workloads this session has served."""
        return int(self._serve_runs.value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def metrics(self) -> MetricsSnapshot:
        """A point-in-time view of the session's metrics bus.

        Always carries the session counters
        (``deployment.serve_runs``, ``deployment.profiling_campaigns``);
        when the spec enables telemetry it additionally carries every
        hot-path instrument (admission, batching, placement, routing);
        when the spec enables profiling, ``metrics()["profile"]`` holds
        the host-time phase breakdown accumulated so far.

        Returns:
            The :class:`~repro.telemetry.registry.MetricsSnapshot`.
        """
        profile = self.profiler.report() if self.profiler.enabled else None
        return self._metrics.snapshot(profile=profile)

    def snapshot(self) -> Dict[str, object]:
        """Current topology plus how the spec differs from the defaults.

        Reuses :meth:`~repro.core.ecosystem.LegatoSystem.describe` for
        the owning system's view when the deployment was created through
        ``LegatoSystem.deploy``.

        Returns:
            Name, backend topology (elastic changes included), session
            counters, the full spec dict, and the spec's diff against
            ``DeploymentSpec()`` defaults.
        """
        snapshot: Dict[str, object] = {
            "name": self.spec.name,
            "closed": self._closed,
            "serve_runs": self.serve_runs,
            "profiling_campaigns": int(self._profilings.value),
            "topology": self.backend.topology(),
            "spec": self.spec.to_dict(),
            "spec_overrides": self.spec.diff(),
        }
        if self._system is not None:
            snapshot["system"] = self._system.describe()
        return snapshot
