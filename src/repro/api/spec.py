"""The declarative deployment spec: one validated tree, whole stack.

Three PRs of growth piled nine interacting keyword arguments onto
``LegatoSystem.serve()`` and near-duplicate parameter sets onto
``federate()`` / ``autoscaler()``.  :class:`DeploymentSpec` replaces that
kwarg explosion with what production schedulers are actually driven by: a
frozen, serialisable tree of sections --

* :class:`TopologySpec`  -- shard count, cluster scale, seed policy;
* :class:`SchedulerSpec` -- HEATS tunables plus the prediction-score cache;
* :class:`ServingSpec`   -- batching and serving-loop cadence;
* :class:`AutoscaleSpec` -- the elastic control loop's knobs;
* :class:`TelemetrySpec` -- the metrics bus wiring;

-- with ``to_dict()/from_dict()`` plus lossless JSON and TOML round-trips,
cross-section validation that reports *all* problems with their spec
paths (not just the first), and :meth:`DeploymentSpec.preset` factories
for the three canonical backend shapes.

Sections deliberately do **not** raise in ``__post_init__``: a spec read
from a config file should surface every mistake at once through
:meth:`DeploymentSpec.validate` / :meth:`DeploymentSpec.check` rather
than one ``ValueError`` per edit-reload cycle.  (The exception is
:class:`~repro.core.seeding.SeedPolicy`, whose invariants other layers
rely on at construction time.)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, get_type_hints

from repro.api.serialization import dumps_json, dumps_toml, loads_json, loads_toml
from repro.autoscale.policy import AutoscaleConfig
from repro.core.seeding import SeedPolicy
from repro.hardware.microserver import MICROSERVER_CATALOG
from repro.scheduler.heats import HeatsConfig
from repro.serving.batching import BatchPolicy


@dataclass(frozen=True)
class SpecIssue:
    """One validation problem, anchored to its path in the spec tree."""

    path: str
    message: str

    def __str__(self) -> str:
        """Render as ``path: message`` for error listings.

        Returns:
            The human-readable one-line form.
        """
        return f"{self.path}: {self.message}"


class SpecValidationError(ValueError):
    """A spec failed validation; carries *every* issue, path-tagged.

    Subclasses :class:`ValueError` so call sites that guarded the old
    kwarg facade with ``except ValueError`` keep working unchanged.
    """

    def __init__(self, issues: List[SpecIssue]) -> None:
        """Bundle the collected issues into one raisable error.

        Args:
            issues: every problem found, in spec-tree order.
        """
        self.issues = list(issues)
        lines = "\n".join(f"  - {issue}" for issue in self.issues)
        super().__init__(
            f"deployment spec has {len(self.issues)} problem(s):\n{lines}"
        )


@dataclass(frozen=True)
class TopologySpec:
    """Where the deployment runs: shards, scale, and seed derivation.

    Args:
        cluster_scale: total ``heats_testbed`` scale across the whole
            deployment (4 * scale nodes); must divide evenly by
            ``shards`` so shards are equally sized.
        shards: number of federation shards; 1 selects the
            single-cluster backend (unless autoscaling turns the
            deployment into a one-shard federation).
        seed: the :class:`~repro.core.seeding.SeedPolicy` every RNG
            stream in the deployment derives from.
    """

    cluster_scale: int = 1
    shards: int = 1
    seed: SeedPolicy = field(default_factory=SeedPolicy)

    @property
    def scale_per_shard(self) -> int:
        """``heats_testbed`` scale of each shard (total scale / shards)."""
        return self.cluster_scale // self.shards

    @property
    def total_nodes(self) -> int:
        """Node count the topology starts with (4 nodes per scale unit)."""
        return 4 * self.cluster_scale

    def validate(self, path: str = "topology") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: spec path prefix used in reported issues.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.cluster_scale < 1:
            issues.append(SpecIssue(f"{path}.cluster_scale", "must be >= 1"))
        if self.shards < 1:
            issues.append(SpecIssue(f"{path}.shards", "must be >= 1"))
        if self.cluster_scale >= 1 and self.shards >= 1 and self.cluster_scale % self.shards:
            issues.append(
                SpecIssue(
                    f"{path}.cluster_scale",
                    f"must be divisible by shards ({self.shards}) so shards "
                    "are equally sized",
                )
            )
        return issues


@dataclass(frozen=True)
class SchedulerSpec:
    """HEATS tunables plus the prediction-score cache on the hot path.

    Args:
        rescheduling_interval_s: cadence of the migration/rebalancing
            pass -- the in-shard HEATS cadence on a single cluster, the
            federation heartbeat on a sharded one (an enabled autoscaler
            overrides it with its control interval).
        migration_improvement_threshold: hysteresis margin a candidate
            node must beat the current host by before a migration.
        default_energy_weight: energy/performance blend used when a
            request carries no tenant weight.
        score_cache: attach prediction-score cache(s) to the scoring hot
            path (one per shard on a federation).
        score_cache_capacity: LRU entry bound of each score cache.
        profiling_noise_fraction: measurement noise of the profiling
            campaigns the prediction models are learned from.
    """

    rescheduling_interval_s: float = 60.0
    migration_improvement_threshold: float = 0.15
    default_energy_weight: float = 0.5
    score_cache: bool = True
    score_cache_capacity: int = 4096
    profiling_noise_fraction: float = 0.05

    def validate(self, path: str = "scheduler") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: spec path prefix used in reported issues.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.rescheduling_interval_s <= 0:
            issues.append(
                SpecIssue(f"{path}.rescheduling_interval_s", "must be positive")
            )
        if not (0.0 <= self.migration_improvement_threshold < 1.0):
            issues.append(
                SpecIssue(
                    f"{path}.migration_improvement_threshold", "must be in [0, 1)"
                )
            )
        if not (0.0 <= self.default_energy_weight <= 1.0):
            issues.append(
                SpecIssue(f"{path}.default_energy_weight", "must be in [0, 1]")
            )
        if self.score_cache_capacity < 1:
            issues.append(SpecIssue(f"{path}.score_cache_capacity", "must be >= 1"))
        if not (0.0 <= self.profiling_noise_fraction < 1.0):
            issues.append(
                SpecIssue(f"{path}.profiling_noise_fraction", "must be in [0, 1)")
            )
        return issues

    def to_heats_config(self) -> HeatsConfig:
        """The node-level scheduler config this section describes.

        Returns:
            A :class:`~repro.scheduler.heats.HeatsConfig`.
        """
        return HeatsConfig(
            rescheduling_interval_s=self.rescheduling_interval_s,
            migration_improvement_threshold=self.migration_improvement_threshold,
            default_energy_weight=self.default_energy_weight,
        )

    @classmethod
    def from_heats_config(
        cls,
        config: Optional[HeatsConfig],
        score_cache: bool = True,
        score_cache_capacity: int = 4096,
        profiling_noise_fraction: float = 0.05,
    ) -> "SchedulerSpec":
        """Translate the old kwarg shape into a spec section.

        Args:
            config: a legacy ``HeatsConfig`` (None means defaults).
            score_cache: the legacy ``use_score_cache`` flag.
            score_cache_capacity: LRU bound of each score cache.
            profiling_noise_fraction: profiling measurement noise.

        Returns:
            The equivalent :class:`SchedulerSpec`.
        """
        config = config if config is not None else HeatsConfig()
        return cls(
            rescheduling_interval_s=config.rescheduling_interval_s,
            migration_improvement_threshold=config.migration_improvement_threshold,
            default_energy_weight=config.default_energy_weight,
            score_cache=score_cache,
            score_cache_capacity=score_cache_capacity,
            profiling_noise_fraction=profiling_noise_fraction,
        )


@dataclass(frozen=True)
class ServingSpec:
    """Admission/batching/SLA knobs of the serving front-end.

    Per-tenant admission contracts (rate limits, queue depths, SLOs)
    live on the :class:`~repro.serving.gateway.Tenant` objects inside
    each workload; this section holds the deployment-wide knobs.

    Args:
        max_batch_size: coalescing cap per batch.
        max_delay_s: longest a batch may wait for more members.
        memory_bucket_gib: requests in the same memory bucket may share
            a batch.
        deadline_margin_s: safety margin subtracted from a member's
            deadline slack before a deadline-driven flush.
        flush_tick_s: cadence at which the gateway drains into the
            batcher and stale batches flush.
        fast_path: **deprecated, ignored.**  The legacy ``fast_path=False``
            scan paths were removed when the simulator core went
            array-native; every run now uses the (outcome-identical)
            event-driven ingest and vectorised capacity-gated retry.  The
            field is kept so old specs still load and round-trip through
            JSON/TOML losslessly; setting it to ``False`` emits a
            :class:`DeprecationWarning` and changes nothing.
    """

    max_batch_size: int = 16
    max_delay_s: float = 2.0
    memory_bucket_gib: float = 0.5
    deadline_margin_s: float = 0.5
    flush_tick_s: float = 0.5
    fast_path: bool = True

    def __post_init__(self) -> None:
        # Deprecation shim, not validation (see the module docstring for
        # why sections don't raise here): old specs carrying the retired
        # flag must keep loading, and a lossless round-trip must preserve
        # whatever they said -- but flipping it no longer selects a path.
        if self.fast_path is not True:
            warnings.warn(
                "ServingSpec.fast_path is deprecated and ignored: the "
                "legacy scan path was removed; every run uses the "
                "array-native event-driven core",
                DeprecationWarning,
                stacklevel=2,
            )

    def validate(self, path: str = "serving") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: spec path prefix used in reported issues.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.max_batch_size < 1:
            issues.append(SpecIssue(f"{path}.max_batch_size", "must be >= 1"))
        if self.max_delay_s < 0:
            issues.append(SpecIssue(f"{path}.max_delay_s", "must be non-negative"))
        if self.memory_bucket_gib <= 0:
            issues.append(SpecIssue(f"{path}.memory_bucket_gib", "must be positive"))
        if self.deadline_margin_s < 0:
            issues.append(
                SpecIssue(f"{path}.deadline_margin_s", "must be non-negative")
            )
        if self.flush_tick_s <= 0:
            issues.append(SpecIssue(f"{path}.flush_tick_s", "must be positive"))
        return issues

    def to_batch_policy(self) -> BatchPolicy:
        """The batcher policy this section describes.

        Returns:
            A :class:`~repro.serving.batching.BatchPolicy`.
        """
        return BatchPolicy(
            max_batch_size=self.max_batch_size,
            max_delay_s=self.max_delay_s,
            memory_bucket_gib=self.memory_bucket_gib,
            deadline_margin_s=self.deadline_margin_s,
        )

    @classmethod
    def from_batch_policy(
        cls, policy: Optional[BatchPolicy], flush_tick_s: float = 0.5
    ) -> "ServingSpec":
        """Translate the old kwarg shape into a spec section.

        Args:
            policy: a legacy ``BatchPolicy`` (None means defaults).
            flush_tick_s: the serving loop's flush cadence.

        Returns:
            The equivalent :class:`ServingSpec`.
        """
        policy = policy if policy is not None else BatchPolicy()
        return cls(
            max_batch_size=policy.max_batch_size,
            max_delay_s=policy.max_delay_s,
            memory_bucket_gib=policy.memory_bucket_gib,
            deadline_margin_s=policy.deadline_margin_s,
            flush_tick_s=flush_tick_s,
        )


@dataclass(frozen=True)
class AutoscaleSpec:
    """The elastic control loop, declaratively (mirrors AutoscaleConfig).

    Args:
        enabled: attach the control loop; requires telemetry to be
            enabled (every signal it acts on flows through the bus).
        control_interval_s: control-loop cadence; also becomes the
            federation's rescheduling heartbeat.
        scale_up_utilisation: utilisation at (or forecast to reach)
            which capacity is added.
        scale_down_utilisation: utilisation at or below which capacity
            may be removed.
        sla_violation_rate_high: late-placement fraction counted as SLA
            pressure.
        queue_delay_slo_s: queueing delay treated as an SLA violation.
        thermal_headroom_floor: minimum aggregate thermal headroom.
        scale_up_cooldown_s: minimum time between scale-up actuations;
            must be at least the control interval to ever bind.
        scale_down_cooldown_s: minimum time between scale-down
            actuations; must be at least the control interval.
        min_shards: lower bound on non-draining member shards.
        max_shards: upper bound on non-draining member shards.
        min_nodes_per_shard: per-shard node floor for shrinking.
        max_nodes_per_shard: per-shard node ceiling for growing.
        grow_node_models: microserver catalogue models cycled when
            growing nodes; every name must exist in the catalogue.
        forecast_alpha: Holt level-smoothing factor.
        forecast_beta: Holt trend-smoothing factor.
        forecast_horizon_ticks: control intervals the demand forecast
            looks ahead.
        forecast_ratio_clamp: bound on the predicted/current demand
            ratio used to project utilisation.
    """

    enabled: bool = False
    control_interval_s: float = 2.0
    scale_up_utilisation: float = 0.70
    scale_down_utilisation: float = 0.30
    sla_violation_rate_high: float = 0.10
    queue_delay_slo_s: float = 5.0
    thermal_headroom_floor: float = 0.05
    scale_up_cooldown_s: float = 4.0
    scale_down_cooldown_s: float = 20.0
    min_shards: int = 1
    max_shards: int = 4
    min_nodes_per_shard: int = 4
    max_nodes_per_shard: int = 12
    grow_node_models: Tuple[str, ...] = ("xeon-d-x86", "arm64-server")
    forecast_alpha: float = 0.5
    forecast_beta: float = 0.3
    forecast_horizon_ticks: int = 1
    forecast_ratio_clamp: float = 2.0

    def validate(self, path: str = "autoscale") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: spec path prefix used in reported issues.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.control_interval_s <= 0:
            issues.append(SpecIssue(f"{path}.control_interval_s", "must be positive"))
        if not (0.0 < self.scale_up_utilisation <= 1.0):
            issues.append(
                SpecIssue(f"{path}.scale_up_utilisation", "must be in (0, 1]")
            )
        if not (0.0 <= self.scale_down_utilisation < self.scale_up_utilisation):
            issues.append(
                SpecIssue(
                    f"{path}.scale_down_utilisation",
                    "must be in [0, scale_up_utilisation)",
                )
            )
        if not (0.0 <= self.sla_violation_rate_high <= 1.0):
            issues.append(
                SpecIssue(f"{path}.sla_violation_rate_high", "must be in [0, 1]")
            )
        if self.queue_delay_slo_s <= 0:
            issues.append(SpecIssue(f"{path}.queue_delay_slo_s", "must be positive"))
        if not (0.0 <= self.thermal_headroom_floor < 1.0):
            issues.append(
                SpecIssue(f"{path}.thermal_headroom_floor", "must be in [0, 1)")
            )
        if self.scale_up_cooldown_s < 0:
            issues.append(
                SpecIssue(f"{path}.scale_up_cooldown_s", "must be non-negative")
            )
        if self.scale_down_cooldown_s < 0:
            issues.append(
                SpecIssue(f"{path}.scale_down_cooldown_s", "must be non-negative")
            )
        if not (1 <= self.min_shards <= self.max_shards):
            issues.append(
                SpecIssue(f"{path}.min_shards", "must satisfy 1 <= min <= max_shards")
            )
        if not (1 <= self.min_nodes_per_shard <= self.max_nodes_per_shard):
            issues.append(
                SpecIssue(
                    f"{path}.min_nodes_per_shard",
                    "must satisfy 1 <= min <= max_nodes_per_shard",
                )
            )
        if not self.grow_node_models:
            issues.append(
                SpecIssue(f"{path}.grow_node_models", "needs at least one model")
            )
        for model in self.grow_node_models:
            if model not in MICROSERVER_CATALOG:
                issues.append(
                    SpecIssue(
                        f"{path}.grow_node_models",
                        f"unknown catalogue model {model!r}",
                    )
                )
        if not (0.0 < self.forecast_alpha <= 1.0):
            issues.append(SpecIssue(f"{path}.forecast_alpha", "must be in (0, 1]"))
        if not (0.0 <= self.forecast_beta <= 1.0):
            issues.append(SpecIssue(f"{path}.forecast_beta", "must be in [0, 1]"))
        if self.forecast_horizon_ticks < 1:
            issues.append(SpecIssue(f"{path}.forecast_horizon_ticks", "must be >= 1"))
        if self.forecast_ratio_clamp < 1.0:
            issues.append(SpecIssue(f"{path}.forecast_ratio_clamp", "must be >= 1"))
        return issues

    def to_config(self) -> AutoscaleConfig:
        """The control-loop config this section describes.

        Returns:
            An :class:`~repro.autoscale.policy.AutoscaleConfig`.
        """
        return AutoscaleConfig(
            control_interval_s=self.control_interval_s,
            scale_up_utilisation=self.scale_up_utilisation,
            scale_down_utilisation=self.scale_down_utilisation,
            sla_violation_rate_high=self.sla_violation_rate_high,
            queue_delay_slo_s=self.queue_delay_slo_s,
            thermal_headroom_floor=self.thermal_headroom_floor,
            scale_up_cooldown_s=self.scale_up_cooldown_s,
            scale_down_cooldown_s=self.scale_down_cooldown_s,
            min_shards=self.min_shards,
            max_shards=self.max_shards,
            min_nodes_per_shard=self.min_nodes_per_shard,
            max_nodes_per_shard=self.max_nodes_per_shard,
            grow_node_models=self.grow_node_models,
            forecast_alpha=self.forecast_alpha,
            forecast_beta=self.forecast_beta,
            forecast_horizon_ticks=self.forecast_horizon_ticks,
            forecast_ratio_clamp=self.forecast_ratio_clamp,
        )

    @classmethod
    def from_config(
        cls, config: Optional[AutoscaleConfig], enabled: bool = True
    ) -> "AutoscaleSpec":
        """Translate the old kwarg shape into a spec section.

        Args:
            config: a legacy ``AutoscaleConfig`` (None means defaults).
            enabled: whether the control loop should attach.

        Returns:
            The equivalent :class:`AutoscaleSpec`.
        """
        config = config if config is not None else AutoscaleConfig()
        return cls(
            enabled=enabled,
            control_interval_s=config.control_interval_s,
            scale_up_utilisation=config.scale_up_utilisation,
            scale_down_utilisation=config.scale_down_utilisation,
            sla_violation_rate_high=config.sla_violation_rate_high,
            queue_delay_slo_s=config.queue_delay_slo_s,
            thermal_headroom_floor=config.thermal_headroom_floor,
            scale_up_cooldown_s=config.scale_up_cooldown_s,
            scale_down_cooldown_s=config.scale_down_cooldown_s,
            min_shards=config.min_shards,
            max_shards=config.max_shards,
            min_nodes_per_shard=config.min_nodes_per_shard,
            max_nodes_per_shard=config.max_nodes_per_shard,
            grow_node_models=config.grow_node_models,
            forecast_alpha=config.forecast_alpha,
            forecast_beta=config.forecast_beta,
            forecast_horizon_ticks=config.forecast_horizon_ticks,
            forecast_ratio_clamp=config.forecast_ratio_clamp,
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """The metrics-bus wiring of the deployment.

    Args:
        enabled: wire a :class:`~repro.telemetry.registry.MetricsRegistry`
            through the gateway-admission, batching, placement, and
            routing hot paths.  Required (and validated) when
            autoscaling is enabled.
        histogram_window: ring-buffer window of histograms created on
            the deployment's bus.
        tracing: additionally record request-scoped spans (admission,
            batching, placement, migration, autoscale actuations) through
            a per-deployment :class:`~repro.telemetry.trace.Tracer`,
            surfaced on ``ServingReport.trace_spans`` /
            ``trace_summary()``.  Requires ``enabled`` (tracing rides the
            telemetry wiring); off by default so the serving hot path
            pays nothing.
        profiling: attribute *host* wall-clock time to hot-path phases
            (ingest, simulate/placement, simulate/advance, routing,
            autoscale, rollup) through a per-deployment
            :class:`~repro.telemetry.profile.PhaseProfiler`, surfaced
            via ``Deployment.metrics()["profile"]``.  Independent of
            ``enabled``: the profiler measures the Python hot path
            itself and does not ride the metrics bus.  Off by default so
            the unprofiled fast path is unchanged.
    """

    enabled: bool = False
    histogram_window: int = 1024
    tracing: bool = False
    profiling: bool = False

    def validate(self, path: str = "telemetry") -> List[SpecIssue]:
        """Collect every problem with this section.

        Args:
            path: spec path prefix used in reported issues.

        Returns:
            All issues found (empty when the section is valid).
        """
        issues: List[SpecIssue] = []
        if self.histogram_window < 2:
            issues.append(SpecIssue(f"{path}.histogram_window", "must be >= 2"))
        if self.tracing and not self.enabled:
            issues.append(
                SpecIssue(f"{path}.tracing", "tracing requires telemetry.enabled")
            )
        return issues


#: preset names accepted by :meth:`DeploymentSpec.preset`, with the
#: backend shape each selects.
PRESETS: Tuple[Tuple[str, str], ...] = (
    ("single", "one HEATS cluster (4 nodes)"),
    ("federated", "4 equally sized shards behind the two-level router"),
    ("autoscaled", "1 elastic shard plus the telemetry-driven control loop"),
)


@dataclass(frozen=True)
class DeploymentSpec:
    """The whole deployment, declaratively.

    Args:
        name: deployment name (shown in snapshots and reports).
        topology: shard/scale/seed section.
        scheduler: HEATS tunables section.
        serving: batching and loop-cadence section.
        autoscale: elastic control-loop section.
        telemetry: metrics-bus section.
    """

    name: str = "deployment"
    topology: TopologySpec = field(default_factory=TopologySpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    autoscale: AutoscaleSpec = field(default_factory=AutoscaleSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> List[SpecIssue]:
        """Collect every problem in the tree, sections then cross-section.

        Returns:
            All issues found, path-tagged; empty when the spec is valid.
        """
        issues: List[SpecIssue] = []
        if not self.name:
            issues.append(SpecIssue("name", "must be non-empty"))
        issues.extend(self.topology.validate())
        issues.extend(self.scheduler.validate())
        issues.extend(self.serving.validate())
        issues.extend(self.autoscale.validate())
        issues.extend(self.telemetry.validate())

        # Cross-section rules: only meaningful once the sections are
        # individually sane, and only binding when autoscaling is on.
        if self.autoscale.enabled:
            if not self.telemetry.enabled:
                issues.append(
                    SpecIssue(
                        "telemetry.enabled",
                        "autoscaling reads every signal from the metrics "
                        "bus; enable telemetry",
                    )
                )
            interval = self.autoscale.control_interval_s
            if 0 < self.autoscale.scale_up_cooldown_s < interval:
                issues.append(
                    SpecIssue(
                        "autoscale.scale_up_cooldown_s",
                        f"shorter than the control interval ({interval}); "
                        "the cooldown could never bind",
                    )
                )
            if 0 < self.autoscale.scale_down_cooldown_s < interval:
                issues.append(
                    SpecIssue(
                        "autoscale.scale_down_cooldown_s",
                        f"shorter than the control interval ({interval}); "
                        "the cooldown could never bind",
                    )
                )
        return issues

    def check(self) -> "DeploymentSpec":
        """Raise with every collected issue, or return self when valid.

        Returns:
            This spec, for chaining (``spec.check().to_json()``).

        Raises:
            SpecValidationError: when :meth:`validate` found problems.
        """
        issues = self.validate()
        if issues:
            raise SpecValidationError(issues)
        return self

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def preset(cls, name: str) -> "DeploymentSpec":
        """A canonical spec for one of the three backend shapes.

        Args:
            name: one of ``"single"``, ``"federated"``, ``"autoscaled"``
                (see :data:`PRESETS`).

        Returns:
            The preset spec (already valid by construction).
        """
        if name == "single":
            return cls(name="single")
        if name == "federated":
            return cls(name="federated", topology=TopologySpec(cluster_scale=4, shards=4))
        if name == "autoscaled":
            return cls(
                name="autoscaled",
                autoscale=AutoscaleSpec(enabled=True),
                telemetry=TelemetrySpec(enabled=True),
            )
        known = ", ".join(repr(preset) for preset, _ in PRESETS)
        raise KeyError(f"unknown preset {name!r}; known presets: {known}")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Render the tree as plain dicts/scalars (JSON/TOML-safe).

        Returns:
            The nested dict; ``from_dict`` inverts it losslessly.
        """
        return {
            "name": self.name,
            "topology": {
                "cluster_scale": self.topology.cluster_scale,
                "shards": self.topology.shards,
                "seed": _section_to_dict(self.topology.seed),
            },
            "scheduler": _section_to_dict(self.scheduler),
            "serving": _section_to_dict(self.serving),
            "autoscale": _section_to_dict(self.autoscale),
            "telemetry": _section_to_dict(self.telemetry),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeploymentSpec":
        """Rebuild a spec from its dict form, reporting *all* shape errors.

        Unknown sections or fields, wrong types, and invalid nested
        values are all collected and raised together, path-tagged.  The
        result is shape-checked only; call :meth:`check` (or let
        :meth:`~repro.api.deployment.Deployment.from_spec` do it) for
        range and cross-section validation.

        Args:
            data: a mapping of the :meth:`to_dict` shape; missing
                sections/fields keep their defaults.

        Returns:
            The reconstructed spec.

        Raises:
            SpecValidationError: listing every malformed entry.
        """
        issues: List[SpecIssue] = []
        kwargs: Dict[str, Any] = {}
        section_types = {
            "topology": TopologySpec,
            "scheduler": SchedulerSpec,
            "serving": ServingSpec,
            "autoscale": AutoscaleSpec,
            "telemetry": TelemetrySpec,
        }
        for key, value in data.items():
            if key == "name":
                if isinstance(value, str):
                    kwargs["name"] = value
                else:
                    issues.append(SpecIssue("name", "must be a string"))
            elif key in section_types:
                if isinstance(value, Mapping):
                    section = _section_from_dict(section_types[key], value, key, issues)
                    if section is not None:
                        kwargs[key] = section
                else:
                    issues.append(SpecIssue(key, "must be a table/object"))
            else:
                issues.append(SpecIssue(key, "unknown section"))
        if issues:
            raise SpecValidationError(issues)
        return cls(**kwargs)

    def to_json(self) -> str:
        """Serialise to JSON.

        Returns:
            A JSON document; :meth:`from_json` inverts it losslessly.
        """
        return dumps_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "DeploymentSpec":
        """Deserialise from JSON.

        Args:
            text: a document produced by :meth:`to_json` (or written by
                hand in the same shape).

        Returns:
            The reconstructed spec.
        """
        return cls.from_dict(loads_json(text))

    def to_toml(self) -> str:
        """Serialise to TOML.

        Returns:
            A TOML document; :meth:`from_toml` inverts it losslessly.
        """
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "DeploymentSpec":
        """Deserialise from TOML (needs Python >= 3.11 for ``tomllib``).

        Args:
            text: a document produced by :meth:`to_toml` (or written by
                hand in the same shape).

        Returns:
            The reconstructed spec.
        """
        return cls.from_dict(loads_toml(text))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def diff(self, other: Optional["DeploymentSpec"] = None) -> Dict[str, Dict[str, Any]]:
        """Field-level differences against another spec (default: defaults).

        Args:
            other: the baseline spec; None compares against
                ``DeploymentSpec()`` so the diff reads as "what this
                deployment overrides".

        Returns:
            Spec path -> ``{"value": ..., "baseline": ...}`` for every
            leaf that differs.
        """
        baseline = other if other is not None else DeploymentSpec()
        changed: Dict[str, Dict[str, Any]] = {}

        def walk(mine: Mapping[str, Any], theirs: Mapping[str, Any], prefix: str) -> None:
            for key, value in mine.items():
                path = f"{prefix}.{key}" if prefix else key
                base = theirs.get(key)
                if isinstance(value, Mapping) and isinstance(base, Mapping):
                    walk(value, base, path)
                elif value != base:
                    changed[path] = {"value": value, "baseline": base}

        walk(self.to_dict(), baseline.to_dict(), "")
        return changed


def _section_to_dict(section: Any) -> Dict[str, Any]:
    """One flat dataclass section as a dict (tuples become lists)."""
    rendered: Dict[str, Any] = {}
    for spec_field in dataclass_fields(section):
        value = getattr(section, spec_field.name)
        rendered[spec_field.name] = list(value) if isinstance(value, tuple) else value
    return rendered


def _section_from_dict(
    cls: type, data: Mapping[str, Any], path: str, issues: List[SpecIssue]
) -> Optional[Any]:
    """Rebuild one section dataclass, appending shape issues as found."""
    hints = get_type_hints(cls)
    valid = {spec_field.name for spec_field in dataclass_fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        field_path = f"{path}.{key}"
        if key not in valid:
            issues.append(SpecIssue(field_path, "unknown field"))
            continue
        hint = hints[key]
        if hint is SeedPolicy:
            if not isinstance(value, Mapping):
                issues.append(SpecIssue(field_path, "must be a table/object"))
                continue
            nested = _section_from_dict(SeedPolicy, value, field_path, issues)
            if nested is not None:
                kwargs[key] = nested
            continue
        converted = _convert_scalar(hint, value, field_path, issues)
        if converted is not _CONVERSION_FAILED:
            kwargs[key] = converted
    try:
        return cls(**kwargs)
    except ValueError as exc:  # e.g. SeedPolicy stride invariants
        issues.append(SpecIssue(path, str(exc)))
        return None


#: sentinel distinguishing "conversion failed" from a legitimate value.
_CONVERSION_FAILED = object()


def _convert_scalar(hint: Any, value: Any, path: str, issues: List[SpecIssue]) -> Any:
    """Coerce one leaf value to its annotated type, or record an issue."""
    if hint is bool:
        if isinstance(value, bool):
            return value
        issues.append(SpecIssue(path, "must be a boolean"))
    elif hint is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        issues.append(SpecIssue(path, "must be an integer"))
    elif hint is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        issues.append(SpecIssue(path, "must be a number"))
    elif hint is str:
        if isinstance(value, str):
            return value
        issues.append(SpecIssue(path, "must be a string"))
    else:  # the only remaining spec leaf type: Tuple[str, ...]
        if isinstance(value, (list, tuple)) and all(
            isinstance(item, str) for item in value
        ):
            return tuple(value)
        issues.append(SpecIssue(path, "must be a list of strings"))
    return _CONVERSION_FAILED
