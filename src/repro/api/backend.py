"""Backend protocol: one polymorphic build step for the three serve paths.

``LegatoSystem.serve()`` used to fork three ways inside one method body --
single cluster, federation, autoscaled federation -- re-deciding the
shape on every call and rebuilding every layer from scratch.  Here the
decision is made *once*, from the validated spec, into a
:class:`Backend`: an object that owns the warm state (profiled
prediction models, score caches, tenant affinity, telemetry registry,
elastically grown topology) and serves any number of workloads against
it.  :class:`~repro.api.deployment.Deployment` holds exactly one backend
for its whole lifetime.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, runtime_checkable

from repro.api.spec import DeploymentSpec
from repro.federation.federation import Federation
from repro.federation.policy import FederationConfig
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.serving.cache import PredictionScoreCache
from repro.serving.gateway import RequestGateway
from repro.serving.loop import ServingLoop, ServingReport, ServingWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autoscale.controller import Autoscaler
    from repro.serving.batching import BatchPolicy
    from repro.telemetry.profile import PhaseProfiler
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.trace import Tracer


@runtime_checkable
class Backend(Protocol):
    """What a deployment session needs from its placement backend."""

    #: backend shape name shown in snapshots (``single`` / ``federated``
    #: / ``autoscaled``).
    name: str

    def serve(
        self, workload: ServingWorkload, batch_policy: Optional["BatchPolicy"] = None
    ) -> ServingReport:
        """Serve one workload against the backend's warm state.

        Args:
            workload: tenants plus their request stream.
            batch_policy: optional override of the spec's batching knobs.

        Returns:
            The :class:`~repro.serving.loop.ServingReport` for this run.
        """
        ...

    def topology(self) -> Dict[str, object]:
        """The backend's *current* topology (elastic changes included).

        Returns:
            A dict safe to embed in ``Deployment.snapshot()``.
        """
        ...


def _ensure_idle(cluster: Cluster, backend_name: str) -> None:
    """Refuse to serve over leftovers of an interleaved run.

    A completed simulation releases every reservation, so a non-idle
    cluster at serve time means two runs are being interleaved on shared
    state -- the exact corruption the old one-shot guards existed for.
    """
    capacity = cluster.capacity()
    if capacity.free_cores != capacity.total_cores:
        raise RuntimeError(
            f"the {backend_name} backend still hosts running tasks from a "
            "previous run; serve runs back-to-back, not interleaved"
        )


class SingleClusterBackend:
    """One HEATS cluster, profiled once, serving many workloads."""

    name = "single"

    def __init__(
        self,
        spec: DeploymentSpec,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Build the cluster and learn its prediction models (once).

        Args:
            spec: a validated deployment spec with ``topology.shards == 1``.
            metrics: optional telemetry bus wired through the placement
                and (per-run) admission/batching hot paths.
            tracer: optional request-scoped tracer threaded into every
                serving run (None or disabled costs nothing).
            profiler: optional host-time phase profiler threaded into
                every serving run (None or disabled costs nothing).
        """
        self.spec = spec
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        self.cluster = Cluster.heats_testbed(scale=spec.topology.cluster_scale)
        self.scheduler = HeatsScheduler.with_learned_models(
            self.cluster,
            config=spec.scheduler.to_heats_config(),
            noise_fraction=spec.scheduler.profiling_noise_fraction,
            seed=spec.topology.seed.shard_seed(0),
            score_cache=(
                PredictionScoreCache(capacity=spec.scheduler.score_cache_capacity)
                if spec.scheduler.score_cache
                else None
            ),
            metrics=metrics,
        )

    def serve(
        self, workload: ServingWorkload, batch_policy: Optional["BatchPolicy"] = None
    ) -> ServingReport:
        """Serve one workload; models and score cache stay warm between calls.

        Args:
            workload: tenants plus their request stream.
            batch_policy: optional override of the spec's batching knobs.

        Returns:
            The :class:`~repro.serving.loop.ServingReport` for this run.
        """
        _ensure_idle(self.cluster, self.name)
        gateway = RequestGateway(workload.tenants, metrics=self.metrics)
        loop = ServingLoop(
            self.cluster,
            self.scheduler,
            gateway,
            batch_policy=(
                batch_policy
                if batch_policy is not None
                else self.spec.serving.to_batch_policy()
            ),
            flush_tick_s=self.spec.serving.flush_tick_s,
            metrics=self.metrics,
            tracer=self.tracer,
            profiler=self.profiler,
        )
        return loop.run(workload.requests)

    def topology(self) -> Dict[str, object]:
        """The single cluster's node inventory.

        Returns:
            Backend shape, node count, and cluster scale.
        """
        return {
            "backend": self.name,
            "total_nodes": len(self.cluster),
            "cluster_scale": self.spec.topology.cluster_scale,
        }


class FederatedBackend:
    """A federation of HEATS shards behind the two-level router."""

    name = "federated"

    def __init__(
        self,
        spec: DeploymentSpec,
        metrics: Optional["MetricsRegistry"] = None,
        federation_config: Optional[FederationConfig] = None,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Build all shards (one profiling campaign each) and the router.

        Args:
            spec: a validated deployment spec with ``topology.shards > 1``
                (a 1-shard federation is legal, if pointless without
                autoscaling).
            metrics: optional telemetry bus shared by the routing,
                admission, and batching hot paths.
            federation_config: routing/migration tunables; None derives
                one from the spec (the scheduler section's rescheduling
                interval becomes the federation heartbeat).
            tracer: optional request-scoped tracer threaded into every
                serving run (None or disabled costs nothing).
            profiler: optional host-time phase profiler; the router's
                ``place`` and the serving loop record phases on it (None
                or disabled costs nothing).
        """
        self.spec = spec
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        if federation_config is None:
            federation_config = FederationConfig(
                rescheduling_interval_s=spec.scheduler.rescheduling_interval_s
            )
        self.federation = Federation.build(
            num_shards=spec.topology.shards,
            shard_scale=spec.topology.scale_per_shard,
            heats_config=spec.scheduler.to_heats_config(),
            federation_config=federation_config,
            use_score_cache=spec.scheduler.score_cache,
            metrics=metrics,
            seed_policy=spec.topology.seed,
            cache_capacity=spec.scheduler.score_cache_capacity,
        )
        if profiler is not None and profiler.enabled:
            # The router records its routing phase directly; attached the
            # same way the autoscaler attaches itself to the scheduler.
            self.federation.scheduler.attach_profiler(profiler)

    def serve(
        self, workload: ServingWorkload, batch_policy: Optional["BatchPolicy"] = None
    ) -> ServingReport:
        """Serve one workload; shard models, caches, and pins stay warm.

        Args:
            workload: tenants plus their request stream.
            batch_policy: optional override of the spec's batching knobs.

        Returns:
            The :class:`~repro.serving.loop.ServingReport` for this run,
            with per-run routing telemetry in ``federation_stats``.
        """
        return self.federation.run_workload(
            workload,
            batch_policy=(
                batch_policy
                if batch_policy is not None
                else self.spec.serving.to_batch_policy()
            ),
            flush_tick_s=self.spec.serving.flush_tick_s,
            tracer=self.tracer,
            profiler=self.profiler,
        )

    def topology(self) -> Dict[str, object]:
        """The current shard membership and per-shard node counts.

        Returns:
            Backend shape, total nodes, and one entry per member shard.
        """
        return {
            "backend": self.name,
            "total_nodes": self.federation.total_nodes,
            "shards": [
                {
                    "name": shard.name,
                    "nodes": len(shard.cluster),
                    "region": shard.profile.region,
                    "energy_price_per_kwh": shard.profile.energy_price_per_kwh,
                    "seed": shard.seed,
                }
                for shard in self.federation.shards
            ],
        }


class AutoscaledBackend(FederatedBackend):
    """An elastic federation plus its per-run control loop.

    The *topology* is session-warm: shards grown through one workload's
    spike are still there for the next workload.  The *controller* is
    per-run state (cooldown clocks, node-second accounting, decision
    audit trail all restart at simulation time zero), so each serve
    attaches a fresh :class:`~repro.autoscale.controller.Autoscaler`,
    rebased onto the shared telemetry bus's running counter totals.
    """

    name = "autoscaled"

    def __init__(
        self,
        spec: DeploymentSpec,
        metrics: "MetricsRegistry",
        federation_config: Optional[FederationConfig] = None,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Build the initial federation and attach the first controller.

        Args:
            spec: a validated deployment spec with
                ``autoscale.enabled == True``.
            metrics: the telemetry bus (mandatory: every signal the
                controller acts on flows through it).
            federation_config: routing/migration tunables; the control
                interval overrides its rescheduling heartbeat either way.
            tracer: optional request-scoped tracer threaded into every
                serving run and the controller's actuation events.
            profiler: optional host-time phase profiler; control steps
                record an ``autoscale`` phase on it.
        """
        from repro.autoscale.controller import Autoscaler

        self._autoscale_config = spec.autoscale.to_config()
        base = (
            federation_config if federation_config is not None else FederationConfig()
        )
        super().__init__(
            spec,
            metrics=metrics,
            federation_config=replace(
                base, rescheduling_interval_s=self._autoscale_config.control_interval_s
            ),
            tracer=tracer,
            profiler=profiler,
        )
        self.autoscaler: "Autoscaler" = Autoscaler(
            self.federation,
            config=self._autoscale_config,
            tracer=tracer,
            profiler=profiler,
        )
        self._runs = 0

    def serve(
        self, workload: ServingWorkload, batch_policy: Optional["BatchPolicy"] = None
    ) -> ServingReport:
        """Serve one workload elastically against the warm topology.

        Args:
            workload: tenants plus their request stream.
            batch_policy: optional override of the spec's batching knobs.

        Returns:
            The :class:`~repro.serving.loop.ServingReport` for this run,
            with this run's elastic history in ``autoscale_report``.
        """
        from repro.autoscale.controller import Autoscaler

        if self._runs > 0:
            # Fresh per-run controller over the warm federation; rebase so
            # the previous run's counter totals do not read as one giant
            # first-tick delta.
            self.autoscaler = Autoscaler(
                self.federation,
                config=self._autoscale_config,
                tracer=self.tracer,
                profiler=self.profiler,
            )
            self.autoscaler.rebase_counters()
        self._runs += 1
        return super().serve(workload, batch_policy=batch_policy)

    def topology(self) -> Dict[str, object]:
        """The current (elastically evolved) shard membership.

        Returns:
            The federated topology plus the autoscaler's shard/node bounds.
        """
        described = super().topology()
        described["backend"] = self.name
        described["bounds"] = {
            "min_shards": self._autoscale_config.min_shards,
            "max_shards": self._autoscale_config.max_shards,
            "min_nodes_per_shard": self._autoscale_config.min_nodes_per_shard,
            "max_nodes_per_shard": self._autoscale_config.max_nodes_per_shard,
        }
        return described


def build_backend(
    spec: DeploymentSpec,
    metrics: Optional["MetricsRegistry"],
    tracer: Optional["Tracer"] = None,
    profiler: Optional["PhaseProfiler"] = None,
) -> Backend:
    """The one polymorphic build step: spec shape -> backend instance.

    Args:
        spec: a *validated* deployment spec.
        metrics: the deployment's telemetry bus, or None when telemetry
            is disabled (autoscaled specs always carry one -- validation
            enforces it).
        tracer: the deployment's request-scoped tracer, or None when
            tracing is disabled.
        profiler: the deployment's host-time phase profiler, or None
            when profiling is disabled.

    Returns:
        The built backend, profiled and ready to serve many workloads.
    """
    if spec.autoscale.enabled:
        if metrics is None:
            raise ValueError(
                "an autoscaled deployment needs a telemetry bus; spec "
                "validation should have rejected this"
            )
        return AutoscaledBackend(spec, metrics=metrics, tracer=tracer, profiler=profiler)
    if spec.topology.shards > 1:
        return FederatedBackend(spec, metrics=metrics, tracer=tracer, profiler=profiler)
    return SingleClusterBackend(spec, metrics=metrics, tracer=tracer, profiler=profiler)
