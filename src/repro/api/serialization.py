"""Spec serialisation helpers: JSON via the stdlib, TOML self-contained.

Deployment specs must round-trip through the two formats production
config files actually use.  JSON is trivial (the spec dict is pure
scalars, strings, and lists).  TOML needs more care: the stdlib gained a
*parser* (``tomllib``) in Python 3.11 but never a writer, and this
project adds no third-party dependencies -- so emission is implemented
here for exactly the value shapes a spec dict contains (nested string
-> value mappings whose leaves are bools, ints, floats, strings, or
lists of those).  On interpreters without ``tomllib`` the loader raises
a clear error instead of silently degrading.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Tuple

try:  # Python >= 3.11; the pyproject floor is 3.9.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None  # type: ignore[assignment]


def dumps_json(data: Mapping[str, Any]) -> str:
    """Render a spec dict as pretty-printed JSON.

    Args:
        data: the nested spec dict (``DeploymentSpec.to_dict()`` shape).

    Returns:
        A JSON document with stable key order.
    """
    return json.dumps(data, indent=2, sort_keys=True)


def loads_json(text: str) -> Dict[str, Any]:
    """Parse a JSON spec document back into a dict.

    Args:
        text: a JSON document.

    Returns:
        The parsed dict.
    """
    parsed = json.loads(text)
    if not isinstance(parsed, dict):
        raise ValueError("a spec document must be a JSON object at top level")
    return parsed


#: short escapes TOML basic strings define for common control characters.
_TOML_SHORT_ESCAPES = {
    "\b": "\\b",
    "\t": "\\t",
    "\n": "\\n",
    "\f": "\\f",
    "\r": "\\r",
    '"': '\\"',
    "\\": "\\\\",
}


def _toml_string(value: str) -> str:
    """A TOML basic-string literal.

    Not ``json.dumps``: JSON escapes astral characters as surrogate
    pairs (``\\ud801\\udc00``), which TOML rejects -- escapes must be
    Unicode scalar values.  Non-control characters are emitted raw (the
    document is UTF-8 text), control characters via their escapes.
    """
    rendered = ['"']
    for char in value:
        if char in _TOML_SHORT_ESCAPES:
            rendered.append(_TOML_SHORT_ESCAPES[char])
        elif ord(char) < 0x20 or ord(char) == 0x7F:
            rendered.append(f"\\u{ord(char):04X}")
        else:
            rendered.append(char)
    rendered.append('"')
    return "".join(rendered)


def _toml_scalar(value: Any) -> str:
    """One TOML value literal; rejects shapes a spec never contains."""
    if isinstance(value, bool):  # before int: bool subclasses int
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError("TOML cannot represent non-finite floats")
        # A bare integral float would parse back as an int; keep the type.
        return repr(value) if value != int(value) else f"{value:.1f}"
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    raise TypeError(f"cannot render {type(value).__name__} as a TOML value")


def _split_tables(
    data: Mapping[str, Any]
) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Mapping[str, Any]]]]:
    """Partition a mapping into scalar entries and sub-tables."""
    scalars: List[Tuple[str, Any]] = []
    tables: List[Tuple[str, Mapping[str, Any]]] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            tables.append((key, value))
        else:
            scalars.append((key, value))
    return scalars, tables


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Render a nested spec dict as a TOML document.

    Scalar keys become top-level assignments; nested mappings become
    ``[dotted.tables]``, recursively.

    Args:
        data: the nested spec dict (``DeploymentSpec.to_dict()`` shape).

    Returns:
        A TOML document that ``tomllib`` parses back to an equal dict.
    """
    lines: List[str] = []

    def emit(table: Mapping[str, Any], prefix: str) -> None:
        scalars, tables = _split_tables(table)
        if prefix and scalars:
            lines.append(f"[{prefix}]")
        for key, value in scalars:
            lines.append(f"{key} = {_toml_scalar(value)}")
        if scalars:
            lines.append("")
        for key, value in tables:
            emit(value, f"{prefix}.{key}" if prefix else key)

    emit(data, "")
    return "\n".join(lines).rstrip() + "\n"


def loads_toml(text: str) -> Dict[str, Any]:
    """Parse a TOML spec document back into a dict.

    Args:
        text: a TOML document.

    Returns:
        The parsed dict.

    Raises:
        RuntimeError: on interpreters without ``tomllib`` (Python < 3.11).
    """
    if tomllib is None:  # pragma: no cover - exercised only on 3.9/3.10
        raise RuntimeError(
            "parsing TOML specs needs the stdlib tomllib (Python >= 3.11); "
            "use the JSON round-trip on older interpreters"
        )
    return tomllib.loads(text)
