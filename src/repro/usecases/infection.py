"""Infection Research use case: outbreak clustering of pathogen profiles.

The Infection Research partner (HZI) analyses pathogen typing data to detect
outbreak clusters.  The reproduction implements a representative analysis:
pairwise-distance computation over genetic marker profiles followed by
single-linkage clustering at an outbreak threshold, expressed as a task
graph (distance blocks in parallel, then a merge task) so it exercises the
runtime like the real pipeline would, while the clustering result itself is
computed for real and validated in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hardware.microserver import WorkloadKind
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import Task, make_task


@dataclass
class ClusteringResult:
    """Clusters of sample indices plus bookkeeping."""

    labels: np.ndarray
    num_clusters: int
    outbreak_clusters: List[Set[int]]
    threshold: float


class InfectionClusteringStudy:
    """Synthetic cgMLST-style profiles with planted outbreak clusters."""

    def __init__(
        self,
        num_samples: int = 120,
        num_markers: int = 50,
        planted_outbreaks: int = 3,
        outbreak_size: int = 8,
        mutation_rate: float = 0.02,
        seed: int = 11,
    ) -> None:
        if num_samples <= 0 or num_markers <= 0:
            raise ValueError("sample and marker counts must be positive")
        if planted_outbreaks < 0 or outbreak_size <= 1:
            raise ValueError("outbreaks must have at least two members")
        if planted_outbreaks * outbreak_size > num_samples:
            raise ValueError("planted outbreaks exceed the sample count")
        self.num_samples = num_samples
        self.num_markers = num_markers
        self.planted_outbreaks = planted_outbreaks
        self.outbreak_size = outbreak_size
        self.mutation_rate = mutation_rate
        self.rng = np.random.default_rng(seed)
        self.profiles, self.true_outbreaks = self._generate_profiles()

    # ------------------------------------------------------------------ #
    # Data generation
    # ------------------------------------------------------------------ #
    def _generate_profiles(self) -> Tuple[np.ndarray, List[Set[int]]]:
        """Allele profiles: sporadic samples random, outbreaks near-identical."""
        profiles = self.rng.integers(0, 40, size=(self.num_samples, self.num_markers))
        outbreaks: List[Set[int]] = []
        cursor = 0
        for _ in range(self.planted_outbreaks):
            members = set(range(cursor, cursor + self.outbreak_size))
            seed_profile = self.rng.integers(0, 40, size=self.num_markers)
            for member in members:
                profile = seed_profile.copy()
                mutations = self.rng.random(self.num_markers) < self.mutation_rate
                profile[mutations] = self.rng.integers(0, 40, size=int(mutations.sum()))
                profiles[member] = profile
            outbreaks.append(members)
            cursor += self.outbreak_size
        return profiles, outbreaks

    # ------------------------------------------------------------------ #
    # Analysis (the real computation)
    # ------------------------------------------------------------------ #
    def distance_matrix(self) -> np.ndarray:
        """Pairwise Hamming distances between allele profiles."""
        profiles = self.profiles
        return np.count_nonzero(profiles[:, None, :] != profiles[None, :, :], axis=2)

    def cluster(self, threshold: Optional[float] = None) -> ClusteringResult:
        """Single-linkage clustering at an allele-difference threshold."""
        if threshold is None:
            # Classic outbreak threshold: a small fraction of markers differing.
            threshold = max(2.0, 0.1 * self.num_markers)
        distances = self.distance_matrix()
        labels = np.arange(self.num_samples)

        def find(index: int) -> int:
            while labels[index] != index:
                labels[index] = labels[labels[index]]
                index = labels[index]
            return index

        def union(a: int, b: int) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                labels[max(root_a, root_b)] = min(root_a, root_b)

        for i in range(self.num_samples):
            for j in range(i + 1, self.num_samples):
                if distances[i, j] <= threshold:
                    union(i, j)

        roots = np.array([find(i) for i in range(self.num_samples)])
        clusters: Dict[int, Set[int]] = {}
        for index, root in enumerate(roots):
            clusters.setdefault(int(root), set()).add(index)
        outbreak_clusters = [members for members in clusters.values() if len(members) >= 2]
        canonical = np.zeros(self.num_samples, dtype=int)
        for new_label, root in enumerate(sorted(clusters)):
            for member in clusters[root]:
                canonical[member] = new_label
        return ClusteringResult(
            labels=canonical,
            num_clusters=len(clusters),
            outbreak_clusters=sorted(outbreak_clusters, key=len, reverse=True),
            threshold=float(threshold),
        )

    def recovered_outbreak_fraction(self, result: Optional[ClusteringResult] = None) -> float:
        """Fraction of planted outbreaks recovered as (subsets of) clusters."""
        if not self.true_outbreaks:
            return 1.0
        result = result if result is not None else self.cluster()
        recovered = 0
        for outbreak in self.true_outbreaks:
            for cluster in result.outbreak_clusters:
                if outbreak <= cluster:
                    recovered += 1
                    break
        return recovered / len(self.true_outbreaks)

    # ------------------------------------------------------------------ #
    # Task-graph expression for the runtime
    # ------------------------------------------------------------------ #
    def build_tasks(self, block_size: int = 40) -> List[Task]:
        """Distance blocks in parallel, then clustering, then reporting."""
        if block_size <= 0:
            raise ValueError("block size must be positive")
        blocks = [
            (start, min(start + block_size, self.num_samples))
            for start in range(0, self.num_samples, block_size)
        ]
        tasks: List[Task] = []
        block_regions: List[str] = []
        for index, (start, end) in enumerate(blocks):
            region = f"distances/block{index}"
            block_regions.append(region)
            rows = end - start
            gops = rows * self.num_samples * self.num_markers / 1e9 * 2.0
            tasks.append(
                make_task(
                    name=f"distance-block-{index}",
                    workload=WorkloadKind.DATA_PARALLEL,
                    gops=max(gops, 0.01),
                    memory_gib=0.2,
                    inputs=["profiles"],
                    outputs=[region],
                    region_size_bytes=rows * self.num_samples * 4,
                )
            )
        tasks.append(
            make_task(
                name="single-linkage-clustering",
                workload=WorkloadKind.SCALAR,
                gops=max(self.num_samples**2 / 1e9 * 5.0, 0.01),
                memory_gib=0.2,
                inputs=block_regions,
                outputs=["clusters"],
                reliability_critical=True,
                region_size_bytes=self.num_samples * 8,
            )
        )
        tasks.append(
            make_task(
                name="outbreak-report",
                workload=WorkloadKind.SCALAR,
                gops=0.01,
                memory_gib=0.05,
                inputs=["clusters"],
                outputs=["report"],
                region_size_bytes=16_384,
            )
        )
        return tasks

    def run_on_runtime(
        self, policy: SchedulingPolicy = SchedulingPolicy.ENERGY
    ) -> ExecutionTrace:
        runtime = OmpSsRuntime(policy=policy)
        return runtime.run(self.build_tasks())
