"""Smart Home use case: a sensor-fusion and automation task graph.

The Smart Home scenario (Section II.F) continuously fuses readings from
many in-home sensors, derives occupancy and comfort state, and drives
actuators (heating, lighting) plus anomaly alarms -- a periodic, soft
real-time workload with a mix of tiny scalar tasks and a few heavier
inference tasks.  The class below builds the per-period task graph so the
runtime, the scheduler and the ecosystem facade can execute it, and exposes
knobs (number of rooms / sensors, inference depth) used by tests and
examples to scale the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.graph import TaskGraph
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import Task, make_task


@dataclass(frozen=True)
class SmartHomeWorkload:
    """Parameterised Smart Home control-loop workload."""

    rooms: int = 6
    sensors_per_room: int = 4
    periods: int = 1
    anomaly_detection: bool = True

    def __post_init__(self) -> None:
        if self.rooms <= 0 or self.sensors_per_room <= 0 or self.periods <= 0:
            raise ValueError("workload dimensions must be positive")

    # ------------------------------------------------------------------ #
    # Task-graph construction
    # ------------------------------------------------------------------ #
    def build_tasks(self) -> List[Task]:
        """The task list for all control periods, in submission order."""
        tasks: List[Task] = []
        for period in range(self.periods):
            prefix = f"p{period}"
            fused_regions: List[str] = []
            for room in range(self.rooms):
                sensor_regions = []
                for sensor in range(self.sensors_per_room):
                    region = f"{prefix}/room{room}/sensor{sensor}"
                    sensor_regions.append(region)
                    tasks.append(
                        make_task(
                            name=f"{prefix}-read-r{room}-s{sensor}",
                            workload=WorkloadKind.SCALAR,
                            gops=0.05,
                            memory_gib=0.01,
                            outputs=[region],
                            region_size_bytes=4_096,
                        )
                    )
                fused = f"{prefix}/room{room}/state"
                fused_regions.append(fused)
                tasks.append(
                    make_task(
                        name=f"{prefix}-fuse-r{room}",
                        workload=WorkloadKind.SCALAR,
                        gops=0.5,
                        memory_gib=0.05,
                        inputs=sensor_regions,
                        outputs=[fused],
                        region_size_bytes=16_384,
                    )
                )
            occupancy = f"{prefix}/occupancy"
            tasks.append(
                make_task(
                    name=f"{prefix}-occupancy-inference",
                    workload=WorkloadKind.DNN_INFERENCE,
                    gops=40.0,
                    memory_gib=0.5,
                    inputs=fused_regions,
                    outputs=[occupancy],
                    region_size_bytes=65_536,
                )
            )
            if self.anomaly_detection:
                tasks.append(
                    make_task(
                        name=f"{prefix}-anomaly-detection",
                        workload=WorkloadKind.DATA_PARALLEL,
                        gops=25.0,
                        memory_gib=0.5,
                        inputs=fused_regions,
                        outputs=[f"{prefix}/anomalies"],
                        reliability_critical=True,
                        region_size_bytes=65_536,
                    )
                )
            tasks.append(
                make_task(
                    name=f"{prefix}-actuate",
                    workload=WorkloadKind.SCALAR,
                    gops=0.2,
                    memory_gib=0.01,
                    inputs=[occupancy],
                    outputs=[f"{prefix}/commands"],
                    reliability_critical=True,
                    region_size_bytes=4_096,
                )
            )
        return tasks

    def build_graph(self) -> TaskGraph:
        graph = TaskGraph()
        graph.add_tasks(self.build_tasks())
        return graph

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #
    def run(
        self,
        runtime: Optional[OmpSsRuntime] = None,
        policy: SchedulingPolicy = SchedulingPolicy.ENERGY,
    ) -> ExecutionTrace:
        runtime = runtime if runtime is not None else OmpSsRuntime(policy=policy)
        return runtime.run(self.build_tasks())

    def expected_task_count(self) -> int:
        per_period = self.rooms * self.sensors_per_room + self.rooms + 2
        if self.anomaly_detection:
            per_period += 1
        return per_period * self.periods
