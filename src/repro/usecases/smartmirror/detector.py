"""Detection stage: a calibrated stand-in for the YOLOv3 detectors.

The Smart Mirror runs several neural-network detectors (object, gesture,
face; speech runs separately) on every camera frame.  Running real YOLOv3 is
out of scope, so :class:`DetectionModel` does two things:

* **behaviour**: given the frame's ground truth it produces noisy
  detections -- jittered boxes, missed detections, false positives -- with
  rates typical of a well-trained detector, so the downstream tracker is
  exercised realistically;
* **cost**: it reports the compute cost (Gop/frame) of the detector suite,
  calibrated so that the full-size suite on two GTX-1080-class GPUs yields
  the paper's 21 FPS and the optimised suite on the low-power edge devices
  lands near the 10 FPS target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: compute cost of one full-resolution YOLOv3-class inference (Gop).
FULL_DETECTOR_GOPS = 190.0

#: the detector suite: object, gesture and face recognition streams
#: (speech recognition runs on the CPU and is part of the CPU stage cost).
DETECTOR_STREAMS = ("object", "gesture", "face", "object_secondary")


@dataclass(frozen=True)
class GroundTruthObject:
    """One true object present in a frame."""

    object_id: int
    category: str
    x: float
    y: float
    width: float
    height: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Detection:
    """One detection emitted by the detector suite."""

    x: float
    y: float
    width: float
    height: float
    category: str
    confidence: float
    true_object_id: Optional[int] = None  # None for false positives

    @property
    def center(self) -> np.ndarray:
        return np.array([self.x, self.y])


class DetectionModel:
    """Noisy detection behaviour plus the calibrated compute-cost model."""

    def __init__(
        self,
        recall: float = 0.92,
        false_positives_per_frame: float = 0.3,
        position_noise_px: float = 6.0,
        optimisation_factor: float = 1.0,
        seed: int = 17,
    ) -> None:
        if not (0.0 < recall <= 1.0):
            raise ValueError("recall must be in (0, 1]")
        if false_positives_per_frame < 0:
            raise ValueError("false-positive rate must be non-negative")
        if not (0.0 < optimisation_factor <= 1.0):
            raise ValueError("optimisation factor must be in (0, 1]")
        self.recall = recall
        self.false_positives_per_frame = false_positives_per_frame
        self.position_noise_px = position_noise_px
        self.optimisation_factor = optimisation_factor
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    @property
    def gops_per_frame(self) -> float:
        """Total detector compute per frame across all streams.

        The optimisation factor models the "optimizations on the
        implementation and algorithmic level" (smaller input resolutions,
        pruned/quantised models) the paper plans for the edge target.
        """
        return FULL_DETECTOR_GOPS * len(DETECTOR_STREAMS) * self.optimisation_factor

    @property
    def streams(self) -> Tuple[str, ...]:
        return DETECTOR_STREAMS

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #
    def detect(self, truths: Sequence[GroundTruthObject]) -> List[Detection]:
        """Produce noisy detections for one frame's ground truth."""
        detections: List[Detection] = []
        for truth in truths:
            if self.rng.random() > self.recall:
                continue  # missed detection
            jitter = self.rng.normal(0.0, self.position_noise_px, size=2)
            size_jitter = self.rng.normal(1.0, 0.05, size=2)
            detections.append(
                Detection(
                    x=truth.x + float(jitter[0]),
                    y=truth.y + float(jitter[1]),
                    width=max(4.0, truth.width * float(size_jitter[0])),
                    height=max(4.0, truth.height * float(size_jitter[1])),
                    category=truth.category,
                    confidence=float(self.rng.uniform(0.6, 0.99)),
                    true_object_id=truth.object_id,
                )
            )
        num_false = int(self.rng.poisson(self.false_positives_per_frame))
        for _ in range(num_false):
            detections.append(
                Detection(
                    x=float(self.rng.uniform(0, 1920)),
                    y=float(self.rng.uniform(0, 1080)),
                    width=float(self.rng.uniform(30, 150)),
                    height=float(self.rng.uniform(30, 150)),
                    category=str(self.rng.choice(["person", "hand", "object"])),
                    confidence=float(self.rng.uniform(0.3, 0.6)),
                    true_object_id=None,
                )
            )
        return detections
