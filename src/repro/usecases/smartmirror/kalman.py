"""Constant-velocity Kalman filter used by the Smart Mirror tracker.

Each track keeps a 4-dimensional state ``[x, y, vx, vy]`` updated from
2-dimensional position measurements (detection centres).  The implementation
is the standard predict/update cycle with explicit matrices so the tests can
verify textbook properties (covariance contraction on update, growth on
predict, convergence of the gain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class KalmanTrack:
    """One tracked object with a constant-velocity Kalman state."""

    track_id: int
    initial_position: Tuple[float, float]
    dt: float = 1.0
    process_noise: float = 1.0
    measurement_noise: float = 8.0
    initial_velocity: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("time step must be positive")
        if self.process_noise <= 0 or self.measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        x0, y0 = self.initial_position
        vx0, vy0 = self.initial_velocity
        self.state = np.array([x0, y0, vx0, vy0], dtype=float)
        # Large initial uncertainty on velocity, moderate on position.
        self.covariance = np.diag([25.0, 25.0, 100.0, 100.0])
        self.transition = np.array(
            [
                [1.0, 0.0, self.dt, 0.0],
                [0.0, 1.0, 0.0, self.dt],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        self.observation = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 1.0, 0.0, 0.0],
            ]
        )
        q = self.process_noise
        dt = self.dt
        # Piecewise-constant white acceleration model.
        self.process_covariance = q * np.array(
            [
                [dt**4 / 4, 0.0, dt**3 / 2, 0.0],
                [0.0, dt**4 / 4, 0.0, dt**3 / 2],
                [dt**3 / 2, 0.0, dt**2, 0.0],
                [0.0, dt**3 / 2, 0.0, dt**2],
            ]
        )
        self.measurement_covariance = (self.measurement_noise**2) * np.eye(2)
        self.age = 0
        self.hits = 1
        self.misses = 0
        self.time_since_update = 0

    # ------------------------------------------------------------------ #
    # Filter cycle
    # ------------------------------------------------------------------ #
    def predict(self) -> np.ndarray:
        """Advance the state one time step; returns the predicted position."""
        self.state = self.transition @ self.state
        self.covariance = (
            self.transition @ self.covariance @ self.transition.T + self.process_covariance
        )
        self.age += 1
        self.time_since_update += 1
        return self.position

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Fuse a position measurement; returns the corrected position."""
        measurement = np.asarray(measurement, dtype=float).reshape(2)
        innovation = measurement - self.observation @ self.state
        innovation_cov = (
            self.observation @ self.covariance @ self.observation.T + self.measurement_covariance
        )
        gain = self.covariance @ self.observation.T @ np.linalg.inv(innovation_cov)
        self.state = self.state + gain @ innovation
        identity = np.eye(4)
        self.covariance = (identity - gain @ self.observation) @ self.covariance
        self.hits += 1
        self.time_since_update = 0
        return self.position

    def mark_missed(self) -> None:
        self.misses += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def position(self) -> np.ndarray:
        return self.state[:2].copy()

    @property
    def velocity(self) -> np.ndarray:
        return self.state[2:].copy()

    def gating_distance(self, measurement: np.ndarray) -> float:
        """Squared Mahalanobis distance of a measurement from the prediction."""
        measurement = np.asarray(measurement, dtype=float).reshape(2)
        innovation = measurement - self.observation @ self.state
        innovation_cov = (
            self.observation @ self.covariance @ self.observation.T + self.measurement_covariance
        )
        return float(innovation.T @ np.linalg.inv(innovation_cov) @ innovation)

    def position_uncertainty(self) -> float:
        """Trace of the positional covariance block."""
        return float(np.trace(self.covariance[:2, :2]))
