"""Hungarian (Kuhn-Munkres) assignment solver, implemented from scratch.

The Smart Mirror uses the Hungarian algorithm to associate detections with
existing tracks every frame.  The solver here implements the O(n^3)
potential-based (Jonker-Volgenant style) formulation of the Hungarian
algorithm for rectangular cost matrices; the property-based tests check it
against brute force on small instances and against
``scipy.optimize.linear_sum_assignment`` on larger random ones.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class HungarianSolver:
    """Minimum-cost assignment on a rectangular cost matrix."""

    def solve(self, cost: np.ndarray) -> List[Tuple[int, int]]:
        """Return the optimal (row, column) assignment pairs.

        Every row of an ``n x m`` matrix with ``n <= m`` is assigned to a
        distinct column; when ``n > m`` the matrix is transposed internally
        and the pairs are swapped back, so at most ``min(n, m)`` pairs are
        returned in all cases.
        """
        matrix = np.asarray(cost, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("cost must be a 2-D matrix")
        if matrix.size == 0:
            return []
        if not np.all(np.isfinite(matrix)):
            raise ValueError("cost matrix must be finite")
        transposed = False
        if matrix.shape[0] > matrix.shape[1]:
            matrix = matrix.T
            transposed = True
        rows, cols = matrix.shape

        # Potential-based Hungarian algorithm (1-indexed internals; column 0
        # is the virtual "unassigned" column holding the row being inserted).
        INF = math.inf
        u = [0.0] * (rows + 1)
        v = [0.0] * (cols + 1)
        match = [0] * (cols + 1)  # match[j] = row assigned to column j

        for i in range(1, rows + 1):
            match[0] = i
            links = [0] * (cols + 1)
            mins = [INF] * (cols + 1)
            visited = [False] * (cols + 1)
            current_j = 0
            while True:
                visited[current_j] = True
                row = match[current_j]
                delta = INF
                next_j = 0
                for j in range(1, cols + 1):
                    if visited[j]:
                        continue
                    reduced = matrix[row - 1][j - 1] - u[row] - v[j]
                    if reduced < mins[j]:
                        mins[j] = reduced
                        links[j] = current_j
                    if mins[j] < delta:
                        delta = mins[j]
                        next_j = j
                # Update potentials along the alternating tree.
                for j in range(cols + 1):
                    if visited[j]:
                        u[match[j]] += delta
                        v[j] -= delta
                    else:
                        mins[j] -= delta
                current_j = next_j
                if match[current_j] == 0:
                    break
            # Augment along the alternating path back to the virtual column.
            while current_j != 0:
                previous_j = links[current_j]
                match[current_j] = match[previous_j]
                current_j = previous_j

        pairs: List[Tuple[int, int]] = []
        for j in range(1, cols + 1):
            if match[j] != 0:
                row_index, col_index = match[j] - 1, j - 1
                pairs.append((col_index, row_index) if transposed else (row_index, col_index))
        pairs.sort()
        return pairs

    def solve_with_threshold(
        self, cost: np.ndarray, max_cost: float
    ) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
        """Assignment where pairs above ``max_cost`` are rejected.

        Returns (accepted pairs, unmatched rows, unmatched columns) -- the
        form the tracker consumes: rejected and unmatched detections spawn
        new tracks, unmatched tracks accumulate misses.
        """
        matrix = np.asarray(cost, dtype=float)
        if matrix.size == 0:
            rows = matrix.shape[0] if matrix.ndim == 2 else 0
            cols = matrix.shape[1] if matrix.ndim == 2 else 0
            return [], list(range(rows)), list(range(cols))
        pairs = self.solve(matrix)
        accepted = [(r, c) for r, c in pairs if matrix[r, c] <= max_cost]
        matched_rows = {r for r, _ in accepted}
        matched_cols = {c for _, c in accepted}
        unmatched_rows = [r for r in range(matrix.shape[0]) if r not in matched_rows]
        unmatched_cols = [c for c in range(matrix.shape[1]) if c not in matched_cols]
        return accepted, unmatched_rows, unmatched_cols

    def assignment_cost(self, cost: np.ndarray, pairs: Sequence[Tuple[int, int]]) -> float:
        matrix = np.asarray(cost, dtype=float)
        return float(sum(matrix[r, c] for r, c in pairs))
