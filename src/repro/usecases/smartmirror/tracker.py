"""Multi-object tracker: Kalman prediction + Hungarian association.

"Neural networks like Yolov3 are providing the detections and Kalman and
Hungarian filters are used to keep track" (Section VI).  The tracker follows
the classic SORT-style loop per frame:

1. predict every live track forward one frame,
2. build the track-to-detection cost matrix (Euclidean distance between the
   predicted position and the detection centre),
3. solve the assignment with the Hungarian solver, rejecting pairs beyond a
   gating distance,
4. update matched tracks, age unmatched ones (deleting tracks that missed
   too many frames), and start new tracks from unmatched detections.

The tracker also computes simple MOT metrics against the simulator's ground
truth so tests can assert it actually tracks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.usecases.smartmirror.detector import Detection, GroundTruthObject
from repro.usecases.smartmirror.hungarian import HungarianSolver
from repro.usecases.smartmirror.kalman import KalmanTrack


@dataclass
class TrackingMetrics:
    """Aggregate multi-object tracking quality metrics."""

    frames: int = 0
    true_objects: int = 0
    matched: int = 0
    missed: int = 0
    false_tracks: int = 0
    identity_switches: int = 0

    @property
    def mota(self) -> float:
        """Multi-object tracking accuracy (1 - error rate)."""
        if self.true_objects == 0:
            return 1.0
        errors = self.missed + self.false_tracks + self.identity_switches
        return 1.0 - errors / self.true_objects

    @property
    def recall(self) -> float:
        if self.true_objects == 0:
            return 1.0
        return self.matched / self.true_objects


class MultiObjectTracker:
    """SORT-style tracker over the Smart Mirror detection stream."""

    def __init__(
        self,
        gating_distance_px: float = 90.0,
        max_misses: int = 5,
        min_hits_to_confirm: int = 2,
    ) -> None:
        if gating_distance_px <= 0:
            raise ValueError("gating distance must be positive")
        if max_misses < 1 or min_hits_to_confirm < 1:
            raise ValueError("max_misses and min_hits_to_confirm must be at least 1")
        self.gating_distance_px = gating_distance_px
        self.max_misses = max_misses
        self.min_hits_to_confirm = min_hits_to_confirm
        self.solver = HungarianSolver()
        self.tracks: List[KalmanTrack] = []
        self._ids = itertools.count(1)
        self._track_to_truth: Dict[int, Optional[int]] = {}
        self.metrics = TrackingMetrics()

    # ------------------------------------------------------------------ #
    # Core per-frame step
    # ------------------------------------------------------------------ #
    def step(
        self,
        detections: Sequence[Detection],
        ground_truth: Optional[Sequence[GroundTruthObject]] = None,
    ) -> List[KalmanTrack]:
        """Process one frame; returns the confirmed tracks after the update."""
        for track in self.tracks:
            track.predict()

        if self.tracks and detections:
            cost = np.zeros((len(self.tracks), len(detections)))
            for i, track in enumerate(self.tracks):
                for j, detection in enumerate(detections):
                    cost[i, j] = float(np.linalg.norm(track.position - detection.center))
            matches, unmatched_tracks, unmatched_detections = self.solver.solve_with_threshold(
                cost, self.gating_distance_px
            )
        else:
            matches = []
            unmatched_tracks = list(range(len(self.tracks)))
            unmatched_detections = list(range(len(detections)))

        for track_index, detection_index in matches:
            detection = detections[detection_index]
            self.tracks[track_index].update(detection.center)
            self._note_association(self.tracks[track_index], detection)

        for track_index in unmatched_tracks:
            self.tracks[track_index].mark_missed()

        for detection_index in unmatched_detections:
            detection = detections[detection_index]
            track = KalmanTrack(
                track_id=next(self._ids),
                initial_position=(detection.x, detection.y),
            )
            self._track_to_truth[track.track_id] = detection.true_object_id
            self.tracks.append(track)

        self.tracks = [
            track for track in self.tracks if track.time_since_update <= self.max_misses
        ]

        confirmed = self.confirmed_tracks()
        if ground_truth is not None:
            self._score_frame(confirmed, ground_truth)
        return confirmed

    def confirmed_tracks(self) -> List[KalmanTrack]:
        return [track for track in self.tracks if track.hits >= self.min_hits_to_confirm]

    # ------------------------------------------------------------------ #
    # Metrics bookkeeping
    # ------------------------------------------------------------------ #
    def _note_association(self, track: KalmanTrack, detection: Detection) -> None:
        previous = self._track_to_truth.get(track.track_id)
        current = detection.true_object_id
        if previous is not None and current is not None and previous != current:
            self.metrics.identity_switches += 1
        if current is not None:
            self._track_to_truth[track.track_id] = current

    def _score_frame(
        self, confirmed: Sequence[KalmanTrack], ground_truth: Sequence[GroundTruthObject]
    ) -> None:
        self.metrics.frames += 1
        self.metrics.true_objects += len(ground_truth)
        if not ground_truth:
            self.metrics.false_tracks += len(confirmed)
            return
        if not confirmed:
            self.metrics.missed += len(ground_truth)
            return
        cost = np.zeros((len(confirmed), len(ground_truth)))
        for i, track in enumerate(confirmed):
            for j, truth in enumerate(ground_truth):
                cost[i, j] = float(
                    np.linalg.norm(track.position - np.array([truth.x, truth.y]))
                )
        matches, unmatched_tracks, unmatched_truths = self.solver.solve_with_threshold(
            cost, self.gating_distance_px
        )
        self.metrics.matched += len(matches)
        self.metrics.missed += len(unmatched_truths)
        self.metrics.false_tracks += len(unmatched_tracks)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def gops_per_frame(self, num_objects: int = 5) -> float:
        """Tracking compute per frame (tiny compared to detection).

        Kalman updates are O(1) per track and the Hungarian solve is
        O(n^3) on a handful of objects -- well under a Mop even with
        generous constants; returned in Gop to match the pipeline units.
        """
        kalman_ops = 200.0 * num_objects
        hungarian_ops = 50.0 * (num_objects**3)
        return (kalman_ops + hungarian_ops) / 1e9
