"""Synthetic scene generation for the Smart Mirror tracking pipeline.

The real system observes a living room through two RGBD cameras.  Here a
:class:`SceneSimulator` produces ground-truth object trajectories (people
and hands moving through the field of view with roughly constant velocity
plus process noise, entering and leaving over time), from which the
detection model derives noisy detections and against which the tracker's
output is scored.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.usecases.smartmirror.detector import GroundTruthObject

#: field-of-view bounds in pixels (1080p camera frame).
FRAME_WIDTH = 1920
FRAME_HEIGHT = 1080


@dataclass
class _MovingObject:
    object_id: int
    category: str
    position: np.ndarray  # (x, y)
    velocity: np.ndarray  # (vx, vy) pixels/frame
    size: Tuple[float, float]
    frames_remaining: int


class SceneSimulator:
    """Generates per-frame ground truth for a configurable number of objects."""

    CATEGORIES = ("person", "hand", "object")

    def __init__(
        self,
        mean_objects: float = 3.0,
        mean_lifetime_frames: int = 120,
        process_noise_px: float = 1.5,
        seed: int = 99,
    ) -> None:
        if mean_objects <= 0:
            raise ValueError("mean object count must be positive")
        if mean_lifetime_frames <= 1:
            raise ValueError("object lifetime must exceed one frame")
        self.mean_objects = mean_objects
        self.mean_lifetime_frames = mean_lifetime_frames
        self.process_noise_px = process_noise_px
        self.rng = np.random.default_rng(seed)
        self._ids = itertools.count(1)
        self._objects: List[_MovingObject] = []

    # ------------------------------------------------------------------ #
    # Object lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self) -> _MovingObject:
        category = str(self.rng.choice(self.CATEGORIES))
        # Objects enter from a frame edge and drift across the scene.
        edge = int(self.rng.integers(0, 4))
        if edge == 0:  # left
            position = np.array([0.0, self.rng.uniform(0, FRAME_HEIGHT)])
            velocity = np.array([self.rng.uniform(2.0, 8.0), self.rng.uniform(-2.0, 2.0)])
        elif edge == 1:  # right
            position = np.array([float(FRAME_WIDTH), self.rng.uniform(0, FRAME_HEIGHT)])
            velocity = np.array([-self.rng.uniform(2.0, 8.0), self.rng.uniform(-2.0, 2.0)])
        elif edge == 2:  # top
            position = np.array([self.rng.uniform(0, FRAME_WIDTH), 0.0])
            velocity = np.array([self.rng.uniform(-2.0, 2.0), self.rng.uniform(2.0, 8.0)])
        else:  # bottom
            position = np.array([self.rng.uniform(0, FRAME_WIDTH), float(FRAME_HEIGHT)])
            velocity = np.array([self.rng.uniform(-2.0, 2.0), -self.rng.uniform(2.0, 8.0)])
        size = (
            float(self.rng.uniform(60, 240)),
            float(self.rng.uniform(120, 480)) if category == "person" else float(self.rng.uniform(40, 160)),
        )
        lifetime = max(10, int(self.rng.exponential(self.mean_lifetime_frames)))
        return _MovingObject(
            object_id=next(self._ids),
            category=category,
            position=position,
            velocity=velocity,
            size=size,
            frames_remaining=lifetime,
        )

    def _maintain_population(self) -> None:
        expected = self.mean_objects
        while len(self._objects) < expected:
            self._objects.append(self._spawn())
        # Occasionally spawn an extra object so the population fluctuates.
        if self.rng.random() < 0.05:
            self._objects.append(self._spawn())

    # ------------------------------------------------------------------ #
    # Frame generation
    # ------------------------------------------------------------------ #
    def step(self) -> List[GroundTruthObject]:
        """Advance one frame and return the visible ground-truth objects."""
        self._maintain_population()
        survivors: List[_MovingObject] = []
        truths: List[GroundTruthObject] = []
        for obj in self._objects:
            obj.position = obj.position + obj.velocity + self.rng.normal(
                0.0, self.process_noise_px, size=2
            )
            obj.frames_remaining -= 1
            inside = (
                -obj.size[0] <= obj.position[0] <= FRAME_WIDTH + obj.size[0]
                and -obj.size[1] <= obj.position[1] <= FRAME_HEIGHT + obj.size[1]
            )
            if obj.frames_remaining > 0 and inside:
                survivors.append(obj)
                truths.append(
                    GroundTruthObject(
                        object_id=obj.object_id,
                        category=obj.category,
                        x=float(obj.position[0]),
                        y=float(obj.position[1]),
                        width=obj.size[0],
                        height=obj.size[1],
                    )
                )
        self._objects = survivors
        return truths

    def run(self, frames: int) -> List[List[GroundTruthObject]]:
        """Ground truth for ``frames`` consecutive frames."""
        if frames <= 0:
            raise ValueError("frame count must be positive")
        return [self.step() for _ in range(frames)]
