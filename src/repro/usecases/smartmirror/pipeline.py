"""The Smart Mirror processing pipeline mapped onto hardware (Figs. 8-9).

Per camera frame the pipeline runs three stages:

* **capture / pre-processing, speech recognition and overlay rendering** on
  the CPU microserver (which owns the cameras and the display),
* **detection** (the neural-network suite) distributed across the
  accelerator microservers proportionally to their DNN throughput,
* **tracking** (Kalman + Hungarian) on the CPU microserver.

The achievable frame rate is set by the slowest stage (the stages pipeline
across consecutive frames), capped by the camera rate; power is the sum of
each device's idle power plus its dynamic power scaled by how busy the
stage keeps it.  With the calibrated detector costs this reproduces the
Section VI corner points: ~21 FPS at ~400 W for the two-GTX1080 workstation
and ~10 FPS under 50 W for the optimised low-power edge composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    Microserver,
    MicroserverSpec,
    WorkloadKind,
    make_microserver,
)
from repro.usecases.smartmirror.detector import DetectionModel
from repro.usecases.smartmirror.scenes import SceneSimulator
from repro.usecases.smartmirror.tracker import MultiObjectTracker, TrackingMetrics

#: the RGBD cameras deliver at most 30 frames per second.
CAMERA_FPS_CAP = 30.0

#: CPU-stage work per frame (capture, speech recognition, overlay), in Gop.
CPU_STAGE_GOPS = 2.0


@dataclass(frozen=True)
class PipelineConfiguration:
    """One hardware composition running the Smart Mirror pipeline."""

    name: str
    cpu_model: str
    accelerator_models: Tuple[str, ...]
    optimisation_factor: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.cpu_model not in MICROSERVER_CATALOG:
            raise KeyError(f"unknown CPU microserver model {self.cpu_model!r}")
        for model in self.accelerator_models:
            if model not in MICROSERVER_CATALOG:
                raise KeyError(f"unknown accelerator model {model!r}")
        if not self.accelerator_models:
            raise ValueError("the pipeline needs at least one accelerator")
        if not (0.0 < self.optimisation_factor <= 1.0):
            raise ValueError("optimisation factor must be in (0, 1]")

    # -------------------------- presets -------------------------------- #
    @staticmethod
    def workstation_prototype() -> "PipelineConfiguration":
        """The original prototype: workstation with two GTX-1080 GPUs."""
        return PipelineConfiguration(
            name="workstation-2xGTX1080",
            cpu_model="xeon-d-x86",
            accelerator_models=("gtx1080-gpu", "gtx1080-gpu"),
            optimisation_factor=1.0,
            description="high-end workstation prototype (paper: 21 FPS at 400 W)",
        )

    @staticmethod
    def edge_cpu_2gpu() -> "PipelineConfiguration":
        """Edge server: 1x CPU + 2x GPU SoC with optimised models."""
        return PipelineConfiguration(
            name="edge-cpu+2gpu-soc",
            cpu_model="xeon-d-x86",
            accelerator_models=("jetson-gpu-soc", "jetson-gpu-soc"),
            optimisation_factor=0.25,
            description="COM-HPC edge server, 1x CPU + 2x GPU SoC",
        )

    @staticmethod
    def edge_low_power() -> "PipelineConfiguration":
        """Edge server: ARM CPU + GPU SoC + FPGA SoC, the 50 W / 10 FPS target."""
        return PipelineConfiguration(
            name="edge-arm+gpu+fpga",
            cpu_model="apalis-arm-soc",
            accelerator_models=("jetson-gpu-soc", "zynq-fpga-soc"),
            optimisation_factor=0.25,
            description="optimised low-power edge target (paper goal: 10 FPS at 50 W)",
        )


@dataclass
class PipelineReport:
    """Measured behaviour of one pipeline configuration."""

    configuration: PipelineConfiguration
    fps: float
    power_w: float
    energy_per_frame_j: float
    detection_time_s: float
    cpu_stage_time_s: float
    frames_processed: int
    tracking: TrackingMetrics
    device_utilisation: Dict[str, float] = field(default_factory=dict)

    @property
    def fps_per_watt(self) -> float:
        return self.fps / self.power_w if self.power_w > 0 else 0.0


class SmartMirrorPipeline:
    """Runs the detection + tracking pipeline on one hardware composition."""

    def __init__(
        self,
        configuration: PipelineConfiguration,
        detector: Optional[DetectionModel] = None,
        tracker: Optional[MultiObjectTracker] = None,
        scene: Optional[SceneSimulator] = None,
    ) -> None:
        self.configuration = configuration
        self.detector = detector if detector is not None else DetectionModel(
            optimisation_factor=configuration.optimisation_factor
        )
        self.tracker = tracker if tracker is not None else MultiObjectTracker()
        self.scene = scene if scene is not None else SceneSimulator()
        self.cpu: Microserver = make_microserver(configuration.cpu_model)
        self.accelerators: List[Microserver] = [
            make_microserver(model) for model in configuration.accelerator_models
        ]

    # ------------------------------------------------------------------ #
    # Stage timing model
    # ------------------------------------------------------------------ #
    def detection_time_s(self) -> float:
        """Per-frame detection latency with work split by DNN throughput."""
        total_gops = self.detector.gops_per_frame
        throughputs = [
            accelerator.spec.throughput_gops[WorkloadKind.DNN_INFERENCE]
            for accelerator in self.accelerators
        ]
        aggregate = sum(throughputs)
        # Perfectly balanced split: every accelerator finishes simultaneously.
        return total_gops / aggregate

    def cpu_stage_time_s(self, num_tracks: int = 5) -> float:
        """Per-frame CPU work: capture, speech, overlay plus tracking.

        The CPU-side work shrinks with the same optimisation factor as the
        detectors (lower camera resolution, lighter speech model) -- part of
        the "optimizations on the implementation and algorithmic level" the
        paper plans for the edge target.
        """
        gops = (
            CPU_STAGE_GOPS * self.configuration.optimisation_factor
            + self.tracker.gops_per_frame(num_tracks)
        )
        return self.cpu.spec.execution_time_s(WorkloadKind.SCALAR, gops)

    def frame_period_s(self) -> float:
        """The pipeline's steady-state frame period (bottleneck stage)."""
        bottleneck = max(self.detection_time_s(), self.cpu_stage_time_s(), 1.0 / CAMERA_FPS_CAP)
        return bottleneck

    # ------------------------------------------------------------------ #
    # Power model
    # ------------------------------------------------------------------ #
    def device_utilisation(self) -> Dict[str, float]:
        """Busy fraction of every device at the steady-state frame rate."""
        period = self.frame_period_s()
        utilisation: Dict[str, float] = {
            self.cpu.node_id: min(1.0, self.cpu_stage_time_s() / period)
        }
        detection = self.detection_time_s()
        for accelerator in self.accelerators:
            utilisation[accelerator.node_id] = min(1.0, detection / period)
        return utilisation

    def power_w(self) -> float:
        utilisation = self.device_utilisation()
        total = self.cpu.spec.active_power_w(utilisation[self.cpu.node_id])
        for accelerator in self.accelerators:
            total += accelerator.spec.active_power_w(utilisation[accelerator.node_id])
        return total

    # ------------------------------------------------------------------ #
    # End-to-end run
    # ------------------------------------------------------------------ #
    def run(self, frames: int = 120) -> PipelineReport:
        """Process ``frames`` simulated frames and report FPS / power / MOT."""
        if frames <= 0:
            raise ValueError("frame count must be positive")
        for _ in range(frames):
            truths = self.scene.step()
            detections = self.detector.detect(truths)
            self.tracker.step(detections, ground_truth=truths)
        period = self.frame_period_s()
        fps = 1.0 / period
        power = self.power_w()
        return PipelineReport(
            configuration=self.configuration,
            fps=fps,
            power_w=power,
            energy_per_frame_j=power * period,
            detection_time_s=self.detection_time_s(),
            cpu_stage_time_s=self.cpu_stage_time_s(),
            frames_processed=frames,
            tracking=self.tracker.metrics,
            device_utilisation=self.device_utilisation(),
        )


def compare_configurations(
    configurations: Sequence[PipelineConfiguration], frames: int = 120
) -> List[PipelineReport]:
    """Run the pipeline on several compositions (the Section VI comparison)."""
    return [SmartMirrorPipeline(configuration).run(frames) for configuration in configurations]
