"""The Smart Mirror use case (paper Section VI, Figs. 8-9).

The Smart Mirror combines face, object, gesture and speech recognition
behind a semi-transparent mirror, processing everything locally for
privacy.  Detection is done by neural networks (YOLOv3 in the prototype);
Kalman and Hungarian filters keep track of the detected objects across
frames.  The prototype ran at 21 FPS on a 400 W workstation with two
GTX 1080 GPUs; the project's target is 10 FPS at 50 W on the optimised
three-microserver edge server.

The reproduction keeps the tracking maths real (a constant-velocity Kalman
filter per track and a from-scratch Hungarian assignment solver) and models
the detector as a calibrated synthetic workload whose compute cost is mapped
onto the edge-server devices to obtain FPS and power for each hardware
composition.
"""

from repro.usecases.smartmirror.detector import Detection, DetectionModel, GroundTruthObject
from repro.usecases.smartmirror.scenes import SceneSimulator
from repro.usecases.smartmirror.kalman import KalmanTrack
from repro.usecases.smartmirror.hungarian import HungarianSolver
from repro.usecases.smartmirror.tracker import MultiObjectTracker, TrackingMetrics
from repro.usecases.smartmirror.pipeline import (
    PipelineConfiguration,
    PipelineReport,
    SmartMirrorPipeline,
)

__all__ = [
    "Detection",
    "DetectionModel",
    "GroundTruthObject",
    "SceneSimulator",
    "KalmanTrack",
    "HungarianSolver",
    "MultiObjectTracker",
    "TrackingMetrics",
    "PipelineConfiguration",
    "PipelineReport",
    "SmartMirrorPipeline",
]
