"""Machine Learning use case: a DNN-inference service on the LEGaTO stack.

The ML use case (Section II.F) serves batches of DNN-inference requests.
It is the workload the project goal benchmark uses (energy with and without
the LEGaTO optimisations) and the one the undervolting ablation pairs with
the FPGA accelerator, because the paper singles out ML's inherent fault
resilience as the enabler for sub-guardband operation (Section III.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.devices import ExecutionDevice, build_devices
from repro.runtime.energy import EnergyPolicy
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import Task, make_task
from repro.undervolting.mlresilience import UndervoltedInferenceStudy


@dataclass(frozen=True)
class InferenceRequestBatch:
    """One batch of inference requests."""

    batch_id: int
    requests: int
    gops_per_request: float = 3.0
    memory_gib: float = 0.5

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.gops_per_request <= 0:
            raise ValueError("batch must contain positive work")

    @property
    def total_gops(self) -> float:
        return self.requests * self.gops_per_request


@dataclass
class InferenceServiceReport:
    """Outcome of serving a request stream."""

    trace: ExecutionTrace
    batches: int
    requests: int

    @property
    def throughput_requests_per_s(self) -> float:
        if self.trace.makespan_s <= 0:
            return 0.0
        return self.requests / self.trace.makespan_s

    @property
    def energy_per_request_j(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.trace.total_energy_j / self.requests

    @property
    def requests_per_joule(self) -> float:
        energy = self.trace.total_energy_j
        return self.requests / energy if energy > 0 else 0.0


class InferenceService:
    """Serves inference batches through the OmpSs-like runtime."""

    def __init__(
        self,
        device_models: Sequence[str] = ("xeon-d-x86", "gtx1080-gpu", "kintex-fpga"),
        policy: SchedulingPolicy = SchedulingPolicy.ENERGY,
        preprocessing: bool = True,
    ) -> None:
        self.device_models = tuple(device_models)
        self.policy = policy
        self.preprocessing = preprocessing

    # ------------------------------------------------------------------ #
    # Workload construction
    # ------------------------------------------------------------------ #
    def make_batches(
        self, num_batches: int, requests_per_batch: int = 64, seed: int = 5
    ) -> List[InferenceRequestBatch]:
        if num_batches <= 0 or requests_per_batch <= 0:
            raise ValueError("batch counts must be positive")
        rng = np.random.default_rng(seed)
        return [
            InferenceRequestBatch(
                batch_id=i,
                requests=int(rng.integers(requests_per_batch // 2, requests_per_batch + 1)),
            )
            for i in range(num_batches)
        ]

    def build_tasks(self, batches: Sequence[InferenceRequestBatch]) -> List[Task]:
        tasks: List[Task] = []
        for batch in batches:
            raw = f"batch{batch.batch_id}/raw"
            prepared = f"batch{batch.batch_id}/prepared"
            result = f"batch{batch.batch_id}/result"
            if self.preprocessing:
                tasks.append(
                    make_task(
                        name=f"preprocess-{batch.batch_id}",
                        workload=WorkloadKind.SCALAR,
                        gops=0.2 * batch.requests,
                        memory_gib=batch.memory_gib,
                        inputs=[raw],
                        outputs=[prepared],
                        region_size_bytes=batch.requests * 150_000,
                    )
                )
                inference_input = prepared
            else:
                inference_input = raw
            tasks.append(
                make_task(
                    name=f"infer-{batch.batch_id}",
                    workload=WorkloadKind.DNN_INFERENCE,
                    gops=batch.total_gops,
                    memory_gib=batch.memory_gib,
                    inputs=[inference_input],
                    outputs=[result],
                    region_size_bytes=batch.requests * 4_096,
                )
            )
            tasks.append(
                make_task(
                    name=f"postprocess-{batch.batch_id}",
                    workload=WorkloadKind.SCALAR,
                    gops=0.05 * batch.requests,
                    memory_gib=0.1,
                    inputs=[result],
                    outputs=[f"batch{batch.batch_id}/response"],
                    region_size_bytes=batch.requests * 512,
                )
            )
        return tasks

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def serve(self, num_batches: int = 8, requests_per_batch: int = 64) -> InferenceServiceReport:
        batches = self.make_batches(num_batches, requests_per_batch)
        runtime = OmpSsRuntime(devices=build_devices(self.device_models), policy=self.policy)
        trace = runtime.run(self.build_tasks(batches))
        return InferenceServiceReport(
            trace=trace,
            batches=len(batches),
            requests=sum(batch.requests for batch in batches),
        )

    # ------------------------------------------------------------------ #
    # Undervolted-accelerator coupling (Section III.C)
    # ------------------------------------------------------------------ #
    @staticmethod
    def undervolted_accuracy_energy(
        platform: str = "VC707", mitigate: bool = True
    ) -> List[Tuple[float, float, float]]:
        """(voltage, accuracy, power-saving) points for the FPGA accelerator."""
        study = UndervoltedInferenceStudy(platform=platform)
        return [
            (point.voltage_v, point.accuracy, point.power_saving_fraction)
            for point in study.sweep(mitigate=mitigate)
        ]
