"""LEGaTO use cases (paper Section II.F and VI).

The project develops and optimises several real applications with the
LEGaTO workflow: Smart Home, Smart City, Infection Research, Machine
Learning, and a Secure IoT Gateway, with the **Smart Mirror** (Section VI)
described in detail.  Each use case here is a runnable application built on
the public API of the other subpackages, sized so the examples and
benchmarks can execute it end to end:

* :mod:`repro.usecases.smartmirror`  -- the detection + Kalman/Hungarian
  tracking pipeline mapped onto the edge server (Figs. 8-9).
* :mod:`repro.usecases.smarthome`    -- a sensor-fusion / automation task
  graph for the Smart Home scenario.
* :mod:`repro.usecases.ml_inference` -- a DNN-inference service used by the
  goal benchmark and the undervolting ablation.
* :mod:`repro.usecases.infection`    -- an epidemiological clustering
  workload standing in for the Infection Research use case.
* :mod:`repro.usecases.iot_gateway`  -- the Secure IoT Gateway built on the
  enclave layer.
"""

from repro.usecases.smartmirror import (
    Detection,
    DetectionModel,
    HungarianSolver,
    KalmanTrack,
    MultiObjectTracker,
    PipelineConfiguration,
    PipelineReport,
    SceneSimulator,
    SmartMirrorPipeline,
)
from repro.usecases.smarthome import SmartHomeWorkload
from repro.usecases.ml_inference import InferenceService, InferenceServiceReport
from repro.usecases.infection import InfectionClusteringStudy
from repro.usecases.iot_gateway import SecureIotGateway, GatewayReport

__all__ = [
    "Detection",
    "DetectionModel",
    "HungarianSolver",
    "KalmanTrack",
    "MultiObjectTracker",
    "PipelineConfiguration",
    "PipelineReport",
    "SceneSimulator",
    "SmartMirrorPipeline",
    "SmartHomeWorkload",
    "InferenceService",
    "InferenceServiceReport",
    "InfectionClusteringStudy",
    "SecureIotGateway",
    "GatewayReport",
]
