"""Secure IoT Gateway use case: enclave-protected message processing.

The Secure IoT Gateway (Section II.F) terminates encrypted sensor traffic,
validates and aggregates it, and forwards summaries upstream -- all inside a
trusted execution environment so a compromised edge box cannot read or
tamper with the data.  The gateway below builds the per-window task graph
(decrypt / validate / aggregate / sign) with the crypto stages marked
``secure``, runs it through the :class:`~repro.security.secure_task.SecureTaskExecutor`,
and reports throughput plus the security overhead -- the numbers the project
goal benchmark uses for its security dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.devices import ExecutionDevice, build_devices
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task, make_task
from repro.security.attestation import AttestationService
from repro.security.secure_task import SecureExecutionReport, SecureTaskExecutor


@dataclass
class GatewayReport:
    """Outcome of processing one batch of message windows."""

    secure_report: SecureExecutionReport
    windows: int
    messages: int

    @property
    def messages_per_joule(self) -> float:
        energy = self.secure_report.total_energy_j
        return self.messages / energy if energy > 0 else 0.0

    @property
    def throughput_messages_per_s(self) -> float:
        time_s = self.secure_report.total_time_s
        return self.messages / time_s if time_s > 0 else 0.0

    @property
    def security_overhead_fraction(self) -> float:
        return self.secure_report.security_time_overhead_fraction


class SecureIotGateway:
    """Processes sensor-message windows inside enclaves."""

    def __init__(
        self,
        device_models: Sequence[str] = ("xeon-d-x86", "arm64-server", "jetson-gpu-soc"),
        messages_per_window: int = 2000,
        attestation: Optional[AttestationService] = None,
    ) -> None:
        if messages_per_window <= 0:
            raise ValueError("window size must be positive")
        self.device_models = tuple(device_models)
        self.messages_per_window = messages_per_window
        self.attestation = attestation if attestation is not None else AttestationService()

    # ------------------------------------------------------------------ #
    # Task-graph construction
    # ------------------------------------------------------------------ #
    def build_tasks(self, windows: int) -> List[Task]:
        if windows <= 0:
            raise ValueError("window count must be positive")
        tasks: List[Task] = []
        per_window_bytes = self.messages_per_window * 256
        for window in range(windows):
            encrypted = f"w{window}/encrypted"
            plaintext = f"w{window}/plaintext"
            validated = f"w{window}/validated"
            summary = f"w{window}/summary"
            tasks.append(
                make_task(
                    name=f"decrypt-{window}",
                    workload=WorkloadKind.CRYPTO,
                    gops=0.004 * self.messages_per_window,
                    memory_gib=0.1,
                    inputs=[encrypted],
                    outputs=[plaintext],
                    secure=True,
                    region_size_bytes=per_window_bytes,
                )
            )
            tasks.append(
                make_task(
                    name=f"validate-{window}",
                    workload=WorkloadKind.SCALAR,
                    gops=0.002 * self.messages_per_window,
                    memory_gib=0.1,
                    inputs=[plaintext],
                    outputs=[validated],
                    secure=True,
                    reliability_critical=True,
                    region_size_bytes=per_window_bytes,
                )
            )
            tasks.append(
                make_task(
                    name=f"aggregate-{window}",
                    workload=WorkloadKind.DATA_PARALLEL,
                    gops=0.01 * self.messages_per_window,
                    memory_gib=0.2,
                    inputs=[validated],
                    outputs=[summary],
                    region_size_bytes=per_window_bytes // 10,
                )
            )
            tasks.append(
                make_task(
                    name=f"sign-and-forward-{window}",
                    workload=WorkloadKind.CRYPTO,
                    gops=0.5,
                    memory_gib=0.05,
                    inputs=[summary],
                    outputs=[f"w{window}/upstream"],
                    secure=True,
                    region_size_bytes=per_window_bytes // 10,
                )
            )
        return tasks

    def build_graph(self, windows: int) -> TaskGraph:
        graph = TaskGraph()
        graph.add_tasks(self.build_tasks(windows))
        return graph

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def process(self, windows: int = 4) -> GatewayReport:
        devices = build_devices(self.device_models)
        executor = SecureTaskExecutor(devices, attestation=self.attestation)
        report = executor.execute(self.build_graph(windows))
        return GatewayReport(
            secure_report=report,
            windows=windows,
            messages=windows * self.messages_per_window,
        )
