"""Fault-rate model and fault injector for undervolted BRAMs (Section III.B).

The paper reports that inside the critical region the BRAM fault rate
*increases exponentially* as the voltage approaches ``Vcrash``, reaching a
platform-specific corner value there (652 / 254 / 60 / 153 faults/Mbit).
:class:`FaultRateModel` implements exactly that: zero faults in the
guardband, an exponential ramp across the critical region anchored at a
small onset rate at ``Vmin`` and the measured corner at ``Vcrash``.

:class:`UndervoltFaultInjector` turns the rate into concrete bit-flips in a
:class:`~repro.hardware.fpga.BramArray`, which is how the ML-resilience study
(Section III.C) corrupts model weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.fpga import BramArray, FpgaDevice
from repro.undervolting.platforms import PlatformCalibration
from repro.undervolting.voltage import VoltageRegion, classify_voltage

#: fault rate (faults/Mbit) right at the onset of the critical region.  The
#: characterisation study observes isolated single-bit faults when crossing
#: Vmin; one fault in a few Mbit is the right order of magnitude.
ONSET_FAULTS_PER_MBIT = 0.5


@dataclass(frozen=True)
class FaultRateModel:
    """Exponential fault-rate model for one calibrated platform.

    The rate is ``onset * exp(k * (vmin - v))`` inside the critical region,
    with ``k`` chosen so the rate equals the platform's measured corner at
    ``Vcrash``.  Outside the critical region the rate is zero (guardband /
    nominal) or undefined (crash -- the device no longer answers, so a rate
    is meaningless; callers should check :meth:`operational` first).
    """

    calibration: PlatformCalibration
    onset_faults_per_mbit: float = ONSET_FAULTS_PER_MBIT

    def __post_init__(self) -> None:
        if self.onset_faults_per_mbit <= 0:
            raise ValueError("onset fault rate must be positive")
        if self.onset_faults_per_mbit >= self.calibration.faults_per_mbit_at_vcrash:
            raise ValueError(
                "onset rate must be below the corner rate at Vcrash "
                f"({self.calibration.faults_per_mbit_at_vcrash})"
            )

    @property
    def growth_constant(self) -> float:
        """The exponent ``k`` (per volt) of the exponential ramp."""
        span = self.calibration.vmin - self.calibration.vcrash
        return math.log(
            self.calibration.faults_per_mbit_at_vcrash / self.onset_faults_per_mbit
        ) / span

    def operational(self, voltage: float) -> bool:
        return classify_voltage(voltage, self.calibration) is not VoltageRegion.CRASH

    def faults_per_mbit(self, voltage: float) -> float:
        """Expected fault density at a rail voltage (0 in the safe regions)."""
        region = classify_voltage(voltage, self.calibration)
        if region in (VoltageRegion.NOMINAL, VoltageRegion.GUARDBAND):
            return 0.0
        if region is VoltageRegion.CRASH:
            raise ValueError(
                f"{self.calibration.name} does not respond below Vcrash="
                f"{self.calibration.vcrash} V (requested {voltage} V)"
            )
        return self.onset_faults_per_mbit * math.exp(
            self.growth_constant * (self.calibration.vmin - voltage)
        )

    def expected_faults(self, voltage: float, mbits: float) -> float:
        """Expected absolute fault count for a memory of ``mbits`` megabits."""
        if mbits < 0:
            raise ValueError("memory size must be non-negative")
        return self.faults_per_mbit(voltage) * mbits


class UndervoltFaultInjector:
    """Samples concrete fault counts and injects bit-flips into a BRAM array.

    Fault counts are Poisson-distributed around the model's expectation,
    which matches the per-trial variability the characterisation study
    reports; a deterministic mode (``deterministic=True``) uses the rounded
    expectation instead, which the benchmarks use so their output is stable.
    """

    def __init__(
        self,
        model: FaultRateModel,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = False,
    ) -> None:
        self.model = model
        self.rng = rng if rng is not None else np.random.default_rng(1912)
        self.deterministic = deterministic
        self._history: List[Tuple[float, int]] = []

    def sample_fault_count(self, voltage: float, mbits: float) -> int:
        """Draw the number of faults for one trial at the given voltage."""
        expectation = self.model.expected_faults(voltage, mbits)
        if self.deterministic:
            count = int(round(expectation))
        else:
            count = int(self.rng.poisson(expectation))
        self._history.append((voltage, count))
        return count

    def inject(self, device: FpgaDevice, voltage: float) -> int:
        """Set the rail, inject the sampled faults into the device's BRAMs.

        Returns the injected fault count.  If the requested voltage is in the
        crash region the device is marked unresponsive and ``-1`` is
        returned (mirroring the DONE-pin behaviour: there is no fault count
        to read back from a crashed board).
        """
        region = classify_voltage(voltage, self.model.calibration)
        if region is VoltageRegion.CRASH:
            device.set_vccbram(max(voltage, 0.5))
            device.crash()
            return -1
        device.set_vccbram(voltage)
        count = self.sample_fault_count(voltage, device.bram.total_mbits)
        if count > 0:
            device.bram.inject_bit_flips(count)
        return count

    @property
    def history(self) -> List[Tuple[float, int]]:
        return list(self._history)
