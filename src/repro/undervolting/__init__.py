"""Aggressive FPGA BRAM undervolting (paper Section III, Fig. 5).

Supply-voltage underscaling below the nominal level is one of the most
effective power knobs because dynamic power is quadratic in voltage, and
vendors add a large guardband below nominal.  The paper characterises four
Xilinx platforms (VC707, two KC705 samples, ZC702) and finds three voltage
regions when lowering ``VCCBRAM`` below the 1.0 V nominal:

* the **guardband region** down to ``Vmin`` -- no faults, free power saving;
* the **critical region** down to ``Vcrash`` -- the device still works but
  BRAM content suffers bit-flips whose rate grows exponentially, reaching
  652 / 254 / 60 / 153 faults/Mbit at ``Vcrash`` on VC707, KC705-A, KC705-B
  and ZC702 respectively;
* the **crash region** below ``Vcrash`` -- the device stops responding.

This subpackage provides the per-platform calibration, the voltage-region /
fault-rate / power-saving models, fault injection into the
:class:`~repro.hardware.fpga.BramArray`, the characterisation experiment
that regenerates Fig. 5, and the ML-resilience study of Section III.C.
"""

from repro.undervolting.platforms import (
    PLATFORMS,
    PlatformCalibration,
    get_platform,
    make_platform_device,
)
from repro.undervolting.voltage import (
    VoltageRegion,
    VoltageRegionModel,
    classify_voltage,
)
from repro.undervolting.faults import FaultRateModel, UndervoltFaultInjector
from repro.undervolting.experiment import (
    UndervoltingExperiment,
    UndervoltSweepPoint,
    sweep_platform,
)
from repro.undervolting.mlresilience import (
    UndervoltedInferenceStudy,
    VoltageAccuracyPoint,
)

__all__ = [
    "PLATFORMS",
    "PlatformCalibration",
    "get_platform",
    "make_platform_device",
    "VoltageRegion",
    "VoltageRegionModel",
    "classify_voltage",
    "FaultRateModel",
    "UndervoltFaultInjector",
    "UndervoltingExperiment",
    "UndervoltSweepPoint",
    "sweep_platform",
    "UndervoltedInferenceStudy",
    "VoltageAccuracyPoint",
]
