"""ML resilience to undervolting-induced BRAM faults (paper Section III.C).

The paper's ongoing work exploits the inherent resilience of ML models to
push undervolting *below* the guardband: bit-flips in on-chip weight
memories barely affect classification accuracy until the fault rate becomes
large, so most of the critical-region power saving is available to DNN
accelerators essentially for free.

The study here makes that concrete with a small quantised multi-layer
perceptron whose weights live in the FPGA's BRAM model:

1. train (closed-form ridge-regression readout; no SGD needed) a 2-layer
   network on a synthetic classification task,
2. quantise the weights to int8 and pack them into BRAM blocks,
3. for each operating voltage, inject the fault model's bit-flips into the
   packed weights, unpack, and measure test accuracy and BRAM power saving,
4. optionally apply a simple fault-mitigation (weight clipping), which is
   the kind of low-cost mitigation the cited SBAC-PAD'18 study evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.undervolting.faults import FaultRateModel
from repro.undervolting.platforms import PlatformCalibration, get_platform
from repro.undervolting.voltage import VoltageRegion, VoltageRegionModel


@dataclass(frozen=True)
class VoltageAccuracyPoint:
    """Accuracy / power operating point of the undervolted accelerator."""

    voltage_v: float
    region: VoltageRegion
    faults_per_mbit: float
    injected_bit_flips: int
    accuracy: float
    power_saving_fraction: float
    mitigated: bool


def _make_synthetic_classification(
    n_samples: int, n_features: int, n_classes: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-blob classification data with class-dependent means."""
    centers = rng.normal(scale=3.0, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    features = centers[labels] + rng.normal(size=(n_samples, n_features))
    return features.astype(np.float64), labels.astype(np.int64)


class _QuantisedMlp:
    """A tiny 2-layer MLP with int8-quantised weights stored as raw bytes."""

    def __init__(
        self,
        n_features: int,
        n_hidden: int,
        n_classes: int,
        rng: np.random.Generator,
    ) -> None:
        self.rng = rng
        self.n_features = n_features
        self.n_hidden = n_hidden
        self.n_classes = n_classes
        # Random projection first layer (echo-state style), ridge-trained readout.
        self.w1 = rng.normal(scale=1.0 / np.sqrt(n_features), size=(n_features, n_hidden))
        self.w2 = np.zeros((n_hidden, n_classes))
        self._scale1 = 1.0
        self._scale2 = 1.0

    def _hidden(self, features: np.ndarray, w1: Optional[np.ndarray] = None) -> np.ndarray:
        weights = self.w1 if w1 is None else w1
        return np.tanh(features @ weights)

    def train(self, features: np.ndarray, labels: np.ndarray, ridge: float = 1e-2) -> None:
        hidden = self._hidden(features)
        targets = np.eye(self.n_classes)[labels]
        gram = hidden.T @ hidden + ridge * np.eye(self.n_hidden)
        self.w2 = np.linalg.solve(gram, hidden.T @ targets)

    # -------------------------- quantisation -------------------------- #
    def quantise(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return int8-quantised copies of both weight matrices."""
        self._scale1 = float(np.max(np.abs(self.w1))) or 1.0
        self._scale2 = float(np.max(np.abs(self.w2))) or 1.0
        q1 = np.clip(np.round(self.w1 / self._scale1 * 127.0), -127, 127).astype(np.int8)
        q2 = np.clip(np.round(self.w2 / self._scale2 * 127.0), -127, 127).astype(np.int8)
        return q1, q2

    def dequantise(self, q1: np.ndarray, q2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        w1 = q1.astype(np.float64) / 127.0 * self._scale1
        w2 = q2.astype(np.float64) / 127.0 * self._scale2
        return w1, w2

    def accuracy(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        w1: Optional[np.ndarray] = None,
        w2: Optional[np.ndarray] = None,
    ) -> float:
        weights1 = self.w1 if w1 is None else w1
        weights2 = self.w2 if w2 is None else w2
        scores = np.tanh(features @ weights1) @ weights2
        predictions = np.argmax(scores, axis=1)
        return float(np.mean(predictions == labels))


class UndervoltedInferenceStudy:
    """Accuracy-vs-voltage study of a BRAM-resident quantised DNN."""

    def __init__(
        self,
        platform: str | PlatformCalibration = "VC707",
        n_samples: int = 2000,
        n_features: int = 24,
        n_hidden: int = 96,
        n_classes: int = 6,
        seed: int = 7,
    ) -> None:
        self.calibration = (
            platform if isinstance(platform, PlatformCalibration) else get_platform(platform)
        )
        self.region_model = VoltageRegionModel(self.calibration)
        self.rate_model = FaultRateModel(self.calibration)
        self.rng = np.random.default_rng(seed)
        features, labels = _make_synthetic_classification(
            n_samples, n_features, n_classes, self.rng
        )
        split = int(0.7 * n_samples)
        self.train_x, self.test_x = features[:split], features[split:]
        self.train_y, self.test_y = labels[:split], labels[split:]
        self.model = _QuantisedMlp(n_features, n_hidden, n_classes, self.rng)
        self.model.train(self.train_x, self.train_y)
        self.baseline_accuracy = self.model.accuracy(self.test_x, self.test_y)

    # ------------------------------------------------------------------ #
    # Fault injection into packed weights
    # ------------------------------------------------------------------ #
    def _weights_mbits(self, q1: np.ndarray, q2: np.ndarray) -> float:
        return (q1.size + q2.size) * 8 / 1e6

    def _flip_bits(self, packed: np.ndarray, num_flips: int) -> np.ndarray:
        """Flip ``num_flips`` random bits in an int8 weight buffer."""
        corrupted = packed.copy().view(np.uint8).reshape(-1)
        if num_flips <= 0:
            return corrupted.view(np.int8).reshape(packed.shape)
        positions = self.rng.integers(0, corrupted.size, size=num_flips)
        bits = self.rng.integers(0, 8, size=num_flips)
        for position, bit in zip(positions, bits):
            corrupted[position] ^= np.uint8(1 << bit)
        return corrupted.view(np.int8).reshape(packed.shape)

    def evaluate_voltage(self, voltage: float, mitigate: bool = False) -> VoltageAccuracyPoint:
        """Accuracy and power saving at one BRAM operating voltage."""
        region = self.region_model.region(voltage)
        if region is VoltageRegion.CRASH:
            return VoltageAccuracyPoint(
                voltage_v=voltage,
                region=region,
                faults_per_mbit=float("nan"),
                injected_bit_flips=-1,
                accuracy=0.0,
                power_saving_fraction=1.0,
                mitigated=mitigate,
            )
        q1, q2 = self.model.quantise()
        rate = self.rate_model.faults_per_mbit(voltage)
        mbits = self._weights_mbits(q1, q2)
        flips = int(round(rate * mbits))
        # Split the flips between the two weight buffers by size.
        flips1 = int(round(flips * q1.size / (q1.size + q2.size)))
        flips2 = flips - flips1
        corrupted1 = self._flip_bits(q1, flips1)
        corrupted2 = self._flip_bits(q2, flips2)
        if mitigate:
            # Mitigation: clip dequantised weights to the trained dynamic
            # range, which suppresses the high-magnitude outliers that
            # sign/MSB flips create (the dominant accuracy killer).
            corrupted1 = np.clip(corrupted1, -100, 100)
            corrupted2 = np.clip(corrupted2, -100, 100)
        from repro.hardware.fpga import POWER_SCALING_EXPONENT

        w1, w2 = self.model.dequantise(corrupted1, corrupted2)
        accuracy = self.model.accuracy(self.test_x, self.test_y, w1=w1, w2=w2)
        saving = 1.0 - (voltage / self.calibration.vnom) ** POWER_SCALING_EXPONENT
        return VoltageAccuracyPoint(
            voltage_v=voltage,
            region=region,
            faults_per_mbit=rate,
            injected_bit_flips=flips,
            accuracy=accuracy,
            power_saving_fraction=saving,
            mitigated=mitigate,
        )

    def sweep(
        self, step_v: float = 0.02, mitigate: bool = False, floor_v: float = 0.52
    ) -> List[VoltageAccuracyPoint]:
        """Sweep the operating voltage downwards and record accuracy/power."""
        floor = max(floor_v, self.calibration.vcrash)
        return [
            self.evaluate_voltage(voltage, mitigate=mitigate)
            for voltage in self.region_model.sweep_points(step_v=step_v, floor_v=floor)
        ]

    def recommended_operating_point(
        self, max_accuracy_drop: float = 0.01, mitigate: bool = True
    ) -> VoltageAccuracyPoint:
        """Lowest-voltage point whose accuracy stays within the allowed drop."""
        candidates = [
            point
            for point in self.sweep(step_v=0.01, mitigate=mitigate)
            if point.accuracy >= self.baseline_accuracy - max_accuracy_drop
        ]
        if not candidates:
            raise RuntimeError("no operating point satisfies the accuracy constraint")
        return min(candidates, key=lambda point: point.voltage_v)
