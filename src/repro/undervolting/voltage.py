"""Voltage-region model for BRAM undervolting (paper Fig. 5, left axis).

Lowering ``VCCBRAM`` below nominal traverses three regions:

* **guardband**: between ``Vnom`` and ``Vmin`` -- the vendor margin for
  worst-case process/environment conditions; data is retrieved safely.
* **critical**: between ``Vmin`` and ``Vcrash`` -- the FPGA is still
  accessible but some BRAM content experiences bit-flips.
* **crash**: below ``Vcrash`` -- the DONE pin is unset and the device no
  longer responds to any request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.undervolting.platforms import PlatformCalibration


class VoltageRegion(str, enum.Enum):
    """The three operating regions identified in Section III.B."""

    NOMINAL = "nominal"      # at or above the nominal rail voltage
    GUARDBAND = "guardband"  # Vmin <= V < Vnom: safe, free power saving
    CRITICAL = "critical"    # Vcrash <= V < Vmin: bit-flips appear
    CRASH = "crash"          # V < Vcrash: device unresponsive


def classify_voltage(voltage: float, calibration: PlatformCalibration) -> VoltageRegion:
    """Classify a rail voltage into its operating region for one platform."""
    if voltage <= 0:
        raise ValueError("voltage must be positive")
    if voltage >= calibration.vnom:
        return VoltageRegion.NOMINAL
    if voltage >= calibration.vmin:
        return VoltageRegion.GUARDBAND
    if voltage >= calibration.vcrash:
        return VoltageRegion.CRITICAL
    return VoltageRegion.CRASH


@dataclass(frozen=True)
class VoltageRegionModel:
    """Region boundaries plus convenience queries for one platform."""

    calibration: PlatformCalibration

    def region(self, voltage: float) -> VoltageRegion:
        return classify_voltage(voltage, self.calibration)

    def is_safe(self, voltage: float) -> bool:
        """Safe = no bit-flips: nominal or guardband region."""
        return self.region(voltage) in (VoltageRegion.NOMINAL, VoltageRegion.GUARDBAND)

    def is_operational(self, voltage: float) -> bool:
        """Operational = the device still responds (anything above Vcrash)."""
        return self.region(voltage) is not VoltageRegion.CRASH

    @property
    def vmin(self) -> float:
        return self.calibration.vmin

    @property
    def vcrash(self) -> float:
        return self.calibration.vcrash

    @property
    def vnom(self) -> float:
        return self.calibration.vnom

    def guardband_saving_fraction(self, exponent: float | None = None) -> float:
        """Power saving available for free by eliminating the guardband.

        Uses the same voltage-scaling exponent as the device power model
        (:data:`repro.hardware.fpga.POWER_SCALING_EXPONENT`) unless an
        explicit exponent is supplied.
        """
        from repro.hardware.fpga import POWER_SCALING_EXPONENT

        scaling = POWER_SCALING_EXPONENT if exponent is None else exponent
        return 1.0 - (self.vmin / self.vnom) ** scaling

    def sweep_points(self, step_v: float = 0.01, floor_v: float = 0.50) -> List[float]:
        """Voltage points from Vnom down to ``floor_v`` (inclusive-ish), descending.

        The default 10 mV step matches the experimental methodology of the
        cited characterisation study.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        if floor_v <= 0 or floor_v >= self.vnom:
            raise ValueError("floor must be positive and below Vnom")
        points: List[float] = []
        voltage = self.vnom
        while voltage >= floor_v - 1e-12:
            points.append(round(voltage, 6))
            voltage -= step_v
        return points

    def region_boundaries(self) -> List[Tuple[VoltageRegion, float, float]]:
        """(region, upper_v, lower_v) triples covering Vnom down to Vcrash."""
        return [
            (VoltageRegion.GUARDBAND, self.vnom, self.vmin),
            (VoltageRegion.CRITICAL, self.vmin, self.vcrash),
        ]
