"""Per-platform calibration for the undervolting study (paper Section III.A/B).

The paper evaluates four boards, all 28 nm parts with a nominal
``VCCBRAM`` of 1.0 V:

=========  =======================  ==========================================
Board      Device class             Role in the study
=========  =======================  ==========================================
VC707      Virtex-7 (performance)   headline Fig. 5 curve, 652 faults/Mbit
KC705-A    Kintex-7 (power)         254 faults/Mbit at Vcrash
KC705-B    Kintex-7 (power)         60 faults/Mbit at Vcrash (sample-to-sample
                                    variation versus the identical KC705-A)
ZC702      Zynq-7000 (CPU + logic)  153 faults/Mbit at Vcrash
=========  =======================  ==========================================

The paper gives the fault rates at ``Vcrash`` explicitly and states that the
voltage margins differ slightly between boards (even between the two
identical KC705 samples).  The exact ``Vmin`` / ``Vcrash`` values are taken
from the companion MICRO'18 characterisation the section cites ([7]): the
guardband ends around 0.59-0.61 V and the boards crash around 0.53-0.56 V.
Those corners plus the fault-rate corner fully determine the exponential
fault-rate model in :mod:`repro.undervolting.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardware.fpga import BramArray, FpgaDevice, FpgaFabricRegion


@dataclass(frozen=True)
class PlatformCalibration:
    """Calibration constants for one evaluated FPGA board.

    Attributes:
        name: board name as used in the paper.
        family: marketing family (Virtex-7 / Kintex-7 / Zynq-7000).
        vnom: nominal BRAM rail voltage (1.0 V on all studied parts).
        vmin: minimum safe voltage -- end of the guardband region.
        vcrash: voltage at which the board stops responding.
        faults_per_mbit_at_vcrash: measured fault rate just above the crash
            point (the paper's corner value).
        bram_blocks: number of 36 kbit BRAM blocks on the device.
        bram_dynamic_power_w: BRAM subsystem power at the nominal rail.
        static_power_w: non-BRAM board power used by the device model.
        luts / flip_flops / dsp_slices: fabric resources for the HLS model.
    """

    name: str
    family: str
    vnom: float
    vmin: float
    vcrash: float
    faults_per_mbit_at_vcrash: float
    bram_blocks: int
    bram_dynamic_power_w: float
    static_power_w: float
    luts: int
    flip_flops: int
    dsp_slices: int

    def __post_init__(self) -> None:
        if not (self.vcrash < self.vmin < self.vnom):
            raise ValueError(
                f"{self.name}: expected vcrash < vmin < vnom, got "
                f"{self.vcrash} / {self.vmin} / {self.vnom}"
            )
        if self.faults_per_mbit_at_vcrash <= 0:
            raise ValueError("fault rate at Vcrash must be positive")
        if self.bram_blocks <= 0:
            raise ValueError("platform must have BRAM blocks")

    @property
    def guardband_width_v(self) -> float:
        """Width of the vendor guardband (Vnom - Vmin)."""
        return self.vnom - self.vmin

    @property
    def critical_width_v(self) -> float:
        """Width of the critical region (Vmin - Vcrash)."""
        return self.vmin - self.vcrash

    @property
    def bram_mbits(self) -> float:
        return self.bram_blocks * 36 / 1024.0


#: Calibrated boards.  Fault-rate corners are the paper's §III.B numbers;
#: voltage corners follow the cited MICRO'18 characterisation; BRAM counts
#: are the Xilinx datasheet values (VC707/XC7VX485T: 1030 blocks,
#: KC705/XC7K325T: 445, ZC702/XC7Z020: 140).
PLATFORMS: Dict[str, PlatformCalibration] = {
    "VC707": PlatformCalibration(
        name="VC707",
        family="Virtex-7",
        vnom=1.0,
        vmin=0.61,
        vcrash=0.54,
        faults_per_mbit_at_vcrash=652.0,
        bram_blocks=1030,
        bram_dynamic_power_w=2.4,
        static_power_w=6.0,
        luts=303_600,
        flip_flops=607_200,
        dsp_slices=2_800,
    ),
    "KC705-A": PlatformCalibration(
        name="KC705-A",
        family="Kintex-7",
        vnom=1.0,
        vmin=0.60,
        vcrash=0.53,
        faults_per_mbit_at_vcrash=254.0,
        bram_blocks=445,
        bram_dynamic_power_w=1.3,
        static_power_w=4.0,
        luts=203_800,
        flip_flops=407_600,
        dsp_slices=840,
    ),
    "KC705-B": PlatformCalibration(
        name="KC705-B",
        family="Kintex-7",
        vnom=1.0,
        vmin=0.59,
        vcrash=0.52,
        faults_per_mbit_at_vcrash=60.0,
        bram_blocks=445,
        bram_dynamic_power_w=1.3,
        static_power_w=4.0,
        luts=203_800,
        flip_flops=407_600,
        dsp_slices=840,
    ),
    "ZC702": PlatformCalibration(
        name="ZC702",
        family="Zynq-7000",
        vnom=1.0,
        vmin=0.58,
        vcrash=0.51,
        faults_per_mbit_at_vcrash=153.0,
        bram_blocks=140,
        bram_dynamic_power_w=0.6,
        static_power_w=2.5,
        luts=53_200,
        flip_flops=106_400,
        dsp_slices=220,
    ),
}


def get_platform(name: str) -> PlatformCalibration:
    """Look up a platform calibration by board name (case-insensitive)."""
    key = name.upper()
    for known, calibration in PLATFORMS.items():
        if known.upper() == key:
            return calibration
    known_names = ", ".join(sorted(PLATFORMS))
    raise KeyError(f"unknown platform {name!r}; known platforms: {known_names}")


def make_platform_device(
    name: str, rng: Optional[np.random.Generator] = None
) -> FpgaDevice:
    """Instantiate an :class:`FpgaDevice` matching a calibrated platform."""
    calibration = get_platform(name)
    bram = BramArray(num_blocks=calibration.bram_blocks, rng=rng)
    fabric = FpgaFabricRegion(
        luts=calibration.luts,
        flip_flops=calibration.flip_flops,
        dsp_slices=calibration.dsp_slices,
        bram_blocks=calibration.bram_blocks,
    )
    return FpgaDevice(
        name=calibration.name,
        fabric=fabric,
        bram=bram,
        static_power_w=calibration.static_power_w,
        bram_dynamic_power_w_nominal=calibration.bram_dynamic_power_w,
    )
