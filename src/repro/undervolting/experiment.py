"""The undervolting characterisation experiment that regenerates Fig. 5.

The experimental methodology of Section III.A: write a known pattern into
all BRAMs, lower ``VCCBRAM`` in small steps from the nominal 1.0 V, and at
each step read the memory back, count bit-flips, and record board power.
The outputs per voltage step are

* the operating region (guardband / critical / crash),
* the fault density in faults/Mbit,
* the BRAM power saving relative to the nominal voltage,

which together are exactly the two curves of Fig. 5 (power/reliability
trade-off) plus the per-platform voltage-margin summary quoted in the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.fpga import FpgaDevice
from repro.undervolting.faults import FaultRateModel, UndervoltFaultInjector
from repro.undervolting.platforms import PlatformCalibration, get_platform, make_platform_device
from repro.undervolting.voltage import VoltageRegion, VoltageRegionModel


@dataclass(frozen=True)
class UndervoltSweepPoint:
    """One voltage step of the characterisation sweep."""

    voltage_v: float
    region: VoltageRegion
    faults_per_mbit: float
    observed_faults: int
    bram_power_w: float
    power_saving_fraction: float

    @property
    def is_operational(self) -> bool:
        return self.region is not VoltageRegion.CRASH


@dataclass
class UndervoltSweepResult:
    """Full sweep result for one platform, with the summary corners."""

    platform: PlatformCalibration
    points: List[UndervoltSweepPoint] = field(default_factory=list)

    @property
    def vmin(self) -> float:
        """First voltage at which faults were observed (end of guardband)."""
        for point in self.points:
            if point.region is VoltageRegion.CRITICAL and point.faults_per_mbit > 0:
                return point.voltage_v
        return self.platform.vmin

    @property
    def vcrash(self) -> float:
        """Last voltage at which the device still responded."""
        operational = [p.voltage_v for p in self.points if p.is_operational]
        return min(operational) if operational else self.platform.vcrash

    @property
    def max_faults_per_mbit(self) -> float:
        return max((p.faults_per_mbit for p in self.points), default=0.0)

    @property
    def max_power_saving_fraction(self) -> float:
        return max(
            (p.power_saving_fraction for p in self.points if p.is_operational), default=0.0
        )

    def guardband_points(self) -> List[UndervoltSweepPoint]:
        return [p for p in self.points if p.region is VoltageRegion.GUARDBAND]

    def critical_points(self) -> List[UndervoltSweepPoint]:
        return [p for p in self.points if p.region is VoltageRegion.CRITICAL]

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for tabular printing in the benchmark harness."""
        return [
            {
                "voltage_v": p.voltage_v,
                "region": p.region.value,
                "faults_per_mbit": p.faults_per_mbit,
                "power_saving_pct": 100.0 * p.power_saving_fraction,
            }
            for p in self.points
        ]


class UndervoltingExperiment:
    """Drives the Section III.A methodology on one calibrated platform."""

    def __init__(
        self,
        platform: str | PlatformCalibration,
        step_v: float = 0.01,
        seed: int = 1912,
        deterministic: bool = True,
        test_pattern: int = 0x55,
    ) -> None:
        self.calibration = (
            platform if isinstance(platform, PlatformCalibration) else get_platform(platform)
        )
        self.step_v = step_v
        self.test_pattern = test_pattern
        self._rng = np.random.default_rng(seed)
        self.device: FpgaDevice = make_platform_device(self.calibration.name, rng=self._rng)
        self.region_model = VoltageRegionModel(self.calibration)
        self.rate_model = FaultRateModel(self.calibration)
        self.injector = UndervoltFaultInjector(
            self.rate_model, rng=self._rng, deterministic=deterministic
        )

    def run(self, floor_v: float = 0.50) -> UndervoltSweepResult:
        """Run the downward voltage sweep and return the per-step record."""
        result = UndervoltSweepResult(platform=self.calibration)
        nominal_bram_power = self.calibration.bram_dynamic_power_w
        for voltage in self.region_model.sweep_points(step_v=self.step_v, floor_v=floor_v):
            region = self.region_model.region(voltage)
            if region is VoltageRegion.CRASH:
                self.device.crash()
                result.points.append(
                    UndervoltSweepPoint(
                        voltage_v=voltage,
                        region=region,
                        faults_per_mbit=float("nan"),
                        observed_faults=-1,
                        bram_power_w=0.0,
                        power_saving_fraction=1.0,
                    )
                )
                continue
            # Re-arm the device and memory pattern for this trial.
            self.device.reset()
            self.device.bram.write_pattern(self.test_pattern)
            observed = self.injector.inject(self.device, voltage)
            mismatches = self.device.bram.count_mismatches(self.test_pattern)
            faults_per_mbit = mismatches / self.device.bram.total_mbits
            bram_power = self.device.bram_power_w()
            saving = 1.0 - bram_power / nominal_bram_power if nominal_bram_power else 0.0
            result.points.append(
                UndervoltSweepPoint(
                    voltage_v=voltage,
                    region=region,
                    faults_per_mbit=faults_per_mbit,
                    observed_faults=observed,
                    bram_power_w=bram_power,
                    power_saving_fraction=saving,
                )
            )
        return result


def sweep_platform(
    name: str, step_v: float = 0.01, seed: int = 1912, deterministic: bool = True
) -> UndervoltSweepResult:
    """Convenience wrapper: build and run the experiment for one platform."""
    experiment = UndervoltingExperiment(
        name, step_v=step_v, seed=seed, deterministic=deterministic
    )
    return experiment.run()


def sweep_all_platforms(
    step_v: float = 0.01, seed: int = 1912
) -> Dict[str, UndervoltSweepResult]:
    """Run the characterisation on every calibrated platform (Fig. 5 + text)."""
    from repro.undervolting.platforms import PLATFORMS

    return {
        name: sweep_platform(name, step_v=step_v, seed=seed) for name in sorted(PLATFORMS)
    }
