"""The RECS|BOX enclosure: backplane, carriers, networks, metering.

Paper Fig. 3/4: a 3 RU server whose backplane accepts up to 15 carriers and
up to 144 microservers in total, interconnected by the three networks
modelled in :mod:`repro.hardware.network` and metered by a rack PDU.

The class below is the composition root the rest of the stack talks to: the
HEATS scheduler sees its nodes, the runtime executes on its microservers,
and the monitoring layer samples its meters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.carrier import Carrier, CarrierKind
from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    DeviceKind,
    Microserver,
    make_microserver,
)
from repro.hardware.network import NetworkFabric
from repro.hardware.power import PowerDistributionUnit

#: backplane limits from the paper (Fig. 3: up to 15 carriers, 144 microservers).
MAX_CARRIERS = 15
MAX_MICROSERVERS = 144


@dataclass(frozen=True)
class RecsBoxConfig:
    """Declarative description of a RECS|BOX population.

    ``carriers`` maps a carrier kind to a list of microserver model names to
    install on carriers of that kind; carriers are created as needed to host
    them (respecting per-carrier slot limits).
    """

    name: str = "recsbox"
    carriers: Mapping[CarrierKind, Sequence[str]] = field(default_factory=dict)

    @staticmethod
    def balanced_demo() -> "RecsBoxConfig":
        """A small mixed population used by examples and integration tests."""
        return RecsBoxConfig(
            name="demo-box",
            carriers={
                CarrierKind.HIGH_PERFORMANCE: [
                    "xeon-d-x86",
                    "arm64-server",
                    "kintex-fpga",
                ],
                CarrierKind.PCIE_EXPANSION: ["gtx1080-gpu"],
                CarrierKind.LOW_POWER: [
                    "jetson-gpu-soc",
                    "zynq-fpga-soc",
                    "apalis-arm-soc",
                ],
            },
        )

    @staticmethod
    def full_rack(replication: int = 4) -> "RecsBoxConfig":
        """A larger population for scheduler-scale experiments."""
        return RecsBoxConfig(
            name="full-rack",
            carriers={
                CarrierKind.HIGH_PERFORMANCE: ["xeon-d-x86", "arm64-server", "kintex-fpga"]
                * replication,
                CarrierKind.PCIE_EXPANSION: ["gtx1080-gpu"] * replication,
                CarrierKind.LOW_POWER: ["jetson-gpu-soc", "zynq-fpga-soc", "apalis-arm-soc"]
                * replication,
            },
        )


class RecsBox:
    """A populated RECS|BOX enclosure."""

    def __init__(self, name: str = "recsbox") -> None:
        self.name = name
        self._carriers: List[Carrier] = []
        self.fabric = NetworkFabric()
        self.pdu = PowerDistributionUnit(name=f"{name}-pdu")
        self._carrier_counter = itertools.count()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: RecsBoxConfig) -> "RecsBox":
        """Build and populate a box from a :class:`RecsBoxConfig`."""
        box = cls(name=config.name)
        for kind, models in config.carriers.items():
            carrier = box.add_carrier(kind)
            for model in models:
                microserver = make_microserver(model)
                if carrier.free_slots == 0 or not carrier.accepts(microserver):
                    carrier = box.add_carrier(kind)
                box.install(carrier, microserver)
        return box

    def add_carrier(self, kind: CarrierKind) -> Carrier:
        """Add an empty carrier of the given kind to the backplane."""
        if len(self._carriers) >= MAX_CARRIERS:
            raise ValueError(f"backplane full: at most {MAX_CARRIERS} carriers")
        carrier = Carrier(kind=kind, carrier_id=f"{self.name}-carrier-{next(self._carrier_counter)}")
        self._carriers.append(carrier)
        return carrier

    def install(self, carrier: Carrier, microserver: Microserver) -> Microserver:
        """Install a microserver on a carrier of this box."""
        if carrier not in self._carriers:
            raise ValueError("carrier does not belong to this RECS|BOX")
        if self.microserver_count >= MAX_MICROSERVERS:
            raise ValueError(f"enclosure full: at most {MAX_MICROSERVERS} microservers")
        carrier.install(microserver)
        self.fabric.register_node(microserver.node_id, carrier.carrier_id)
        return microserver

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def carriers(self) -> Sequence[Carrier]:
        return tuple(self._carriers)

    @property
    def microservers(self) -> List[Microserver]:
        return [m for carrier in self._carriers for m in carrier]

    @property
    def microserver_count(self) -> int:
        return sum(len(c) for c in self._carriers)

    def nodes_of_kind(self, kind: DeviceKind) -> List[Microserver]:
        return [m for m in self.microservers if m.spec.kind == kind]

    def find(self, node_id: str) -> Microserver:
        for carrier in self._carriers:
            found = carrier.find(node_id)
            if found is not None:
                return found
        raise KeyError(f"no microserver {node_id!r} in {self.name}")

    def __iter__(self) -> Iterator[Microserver]:
        return iter(self.microservers)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def peak_power_w(self) -> float:
        return sum(c.peak_power_w() for c in self._carriers)

    def idle_power_w(self) -> float:
        return sum(c.idle_power_w() for c in self._carriers)

    def total_energy_j(self) -> float:
        return sum(c.total_energy_j() for c in self._carriers) + self.fabric.total_energy_j()

    def sample_power(self, time_s: float) -> None:
        """Feed the PDU a reading of the box's current idle-level draw.

        Detailed per-task energy is charged directly on the microservers'
        accounts; the PDU trace exists for the monitoring layer, which only
        needs coarse rack-level visibility.
        """
        self.pdu.sample(time_s, self.idle_power_w())

    def inventory(self) -> Dict[str, int]:
        """Count microservers per device kind (used in reports and examples)."""
        counts: Dict[str, int] = {}
        for microserver in self.microservers:
            counts[microserver.spec.kind.value] = counts.get(microserver.spec.kind.value, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecsBox({self.name}, carriers={len(self._carriers)}, "
            f"microservers={self.microserver_count})"
        )
