"""Power metering and energy accounting for the simulated platform.

The LEGaTO middleware monitors node power through external meters (the HEATS
section names PDUs and PowerSpy probes).  The simulator mirrors that split:

* :class:`PowerMeter` is the abstract sampling interface.
* :class:`PowerDistributionUnit` meters a whole enclosure (coarse, slow).
* :class:`PowerSpy` meters a single microserver (fine-grained, fast).
* :class:`EnergyAccount` integrates sampled power over simulated time and is
  the single place the rest of the stack charges energy to.

All power figures are in watts, energy in joules, and time in simulated
seconds.  Nothing here reads wall-clock time; the simulation clock is always
passed in explicitly so experiments are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PowerSample:
    """A single timestamped power reading.

    Attributes:
        time_s: simulation time at which the sample was taken.
        watts: instantaneous power draw in watts.
        source: name of the metered component (microserver id, enclosure id).
    """

    time_s: float
    watts: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.watts < 0.0:
            raise ValueError(f"power cannot be negative, got {self.watts} W")
        if not math.isfinite(self.watts):
            raise ValueError("power sample must be finite")


class EnergyAccount:
    """Integrates power over simulated time for one metered component.

    The account keeps the full sample trace so experiments can later inspect
    the power profile (e.g. the Smart Mirror bench reports both average power
    and the energy of a full pipeline run).

    Energy is integrated with the trapezoidal rule between consecutive
    samples, plus explicit ``charge`` events for work whose energy is known
    directly (e.g. a task whose model already produced joules).
    """

    def __init__(self, name: str = "account") -> None:
        self.name = name
        self._samples: List[PowerSample] = []
        self._charged_j: float = 0.0

    # ------------------------------------------------------------------ #
    # Sampling interface
    # ------------------------------------------------------------------ #
    def record(self, time_s: float, watts: float, source: str = "") -> None:
        """Append a power sample; samples must arrive in time order."""
        if self._samples and time_s < self._samples[-1].time_s:
            raise ValueError(
                f"samples must be monotonically ordered in time: "
                f"{time_s} < {self._samples[-1].time_s}"
            )
        self._samples.append(PowerSample(time_s=time_s, watts=watts, source=source or self.name))

    def charge(self, joules: float) -> None:
        """Directly charge an energy amount (for model-produced task energy)."""
        if joules < 0.0:
            raise ValueError(f"cannot charge negative energy: {joules} J")
        self._charged_j += joules

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def samples(self) -> Sequence[PowerSample]:
        return tuple(self._samples)

    @property
    def charged_energy_j(self) -> float:
        return self._charged_j

    def sampled_energy_j(self) -> float:
        """Trapezoidal integral of the recorded power trace."""
        total = 0.0
        for prev, cur in zip(self._samples, self._samples[1:]):
            dt = cur.time_s - prev.time_s
            total += 0.5 * (prev.watts + cur.watts) * dt
        return total

    def total_energy_j(self) -> float:
        """Sampled energy plus directly charged energy."""
        return self.sampled_energy_j() + self._charged_j

    def average_power_w(self) -> float:
        """Mean power over the sampled window (0 if fewer than two samples)."""
        if len(self._samples) < 2:
            return self._samples[0].watts if self._samples else 0.0
        duration = self._samples[-1].time_s - self._samples[0].time_s
        if duration <= 0.0:
            return self._samples[-1].watts
        return self.sampled_energy_j() / duration

    def peak_power_w(self) -> float:
        return max((s.watts for s in self._samples), default=0.0)

    def window(self, start_s: float, end_s: float) -> "EnergyAccount":
        """Return a new account containing only samples in [start, end]."""
        if end_s < start_s:
            raise ValueError("window end must not precede start")
        sub = EnergyAccount(name=f"{self.name}[{start_s:.3f},{end_s:.3f}]")
        for sample in self._samples:
            if start_s <= sample.time_s <= end_s:
                sub.record(sample.time_s, sample.watts, sample.source)
        return sub

    def reset(self) -> None:
        self._samples.clear()
        self._charged_j = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EnergyAccount(name={self.name!r}, samples={len(self._samples)}, "
            f"energy={self.total_energy_j():.1f} J)"
        )


class PowerMeter:
    """Base power meter: samples one or more power sources on a fixed period.

    Subclasses define the sampling period and measurement noise floor; the
    simulator drives :meth:`sample` explicitly with the current simulated
    time and the true model power, and the meter applies its quantisation.
    """

    #: sampling period in seconds; subclasses override.
    period_s: float = 1.0
    #: absolute quantisation step of the reading, in watts.
    resolution_w: float = 0.1

    def __init__(self, name: str) -> None:
        self.name = name
        self.account = EnergyAccount(name=name)
        self._last_sample_time: Optional[float] = None

    def quantise(self, watts: float) -> float:
        """Round a true power value to the meter's resolution."""
        if self.resolution_w <= 0.0:
            return watts
        return round(watts / self.resolution_w) * self.resolution_w

    def sample(self, time_s: float, true_watts: float) -> Optional[PowerSample]:
        """Record a reading if at least one period elapsed since the last one.

        Returns the stored sample, or ``None`` when the meter skips the
        reading because it is being driven faster than its period.
        """
        if self._last_sample_time is not None and (time_s - self._last_sample_time) < self.period_s:
            return None
        reading = self.quantise(true_watts)
        self.account.record(time_s, reading, source=self.name)
        self._last_sample_time = time_s
        return self.account.samples[-1]

    def energy_j(self) -> float:
        return self.account.total_energy_j()


class PowerDistributionUnit(PowerMeter):
    """Rack-level PDU: coarse 1 s sampling, 1 W resolution."""

    period_s = 1.0
    resolution_w = 1.0


class PowerSpy(PowerMeter):
    """Per-microserver PowerSpy probe: 50 ms sampling, 0.01 W resolution."""

    period_s = 0.05
    resolution_w = 0.01


@dataclass
class PowerBudget:
    """A power cap with utilisation tracking, used by carriers and the edge server."""

    cap_w: float
    allocations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cap_w <= 0.0:
            raise ValueError("power cap must be positive")

    @property
    def allocated_w(self) -> float:
        return sum(self.allocations.values())

    @property
    def headroom_w(self) -> float:
        return self.cap_w - self.allocated_w

    def can_allocate(self, watts: float) -> bool:
        return watts <= self.headroom_w + 1e-9

    def allocate(self, owner: str, watts: float) -> None:
        """Reserve ``watts`` for ``owner``; raises if the cap would be exceeded."""
        if watts < 0.0:
            raise ValueError("allocation must be non-negative")
        if owner in self.allocations:
            raise KeyError(f"owner {owner!r} already holds an allocation")
        if not self.can_allocate(watts):
            raise ValueError(
                f"power budget exceeded: requested {watts:.1f} W, "
                f"headroom {self.headroom_w:.1f} W of {self.cap_w:.1f} W cap"
            )
        self.allocations[owner] = watts

    def release(self, owner: str) -> float:
        """Release the owner's reservation and return the freed watts."""
        if owner not in self.allocations:
            raise KeyError(f"owner {owner!r} holds no allocation")
        return self.allocations.pop(owner)


def aggregate_energy(accounts: Iterable[EnergyAccount]) -> float:
    """Total energy across several accounts (e.g. all microservers of a box)."""
    return sum(account.total_energy_j() for account in accounts)


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours (used in reporting)."""
    return joules / 3.6e6


def derive_power_trace(
    events: Sequence[Tuple[float, float]], idle_w: float
) -> List[PowerSample]:
    """Build a power trace from (time, active_power) busy intervals.

    ``events`` is a sequence of (timestamp, power) points describing when the
    component changed its draw; between events the draw is held constant.
    The idle draw is used before the first event.  This helper is used by the
    hardware models to expose traces to the monitoring layer.
    """
    trace: List[PowerSample] = []
    previous_power = idle_w
    for time_s, watts in sorted(events):
        trace.append(PowerSample(time_s=time_s, watts=previous_power, source="derived"))
        trace.append(PowerSample(time_s=time_s, watts=watts, source="derived"))
        previous_power = watts
    return trace
