"""Simulated RECS|BOX heterogeneous microserver hardware substrate.

The LEGaTO hardware platform (paper Section II.A, Figs. 3-4) is the
RECS|BOX: a 3 RU server hosting up to 15 carriers and up to 144
heterogeneous microservers (x86 / ARM64 CPUs, GPUs, FPGAs and SoCs),
interconnected by a high-speed low-latency network (PCIe / high-speed
serial), a compute network (up to 40 GbE) and a dedicated management
network.  A compact edge variant with three COM-HPC microservers (Fig. 9)
backs the Smart Mirror use case.

This subpackage models that platform at the level the rest of the stack
needs: per-microserver performance/power profiles for different workload
kinds, carriers and backplane composition rules, network transfer costs,
power metering, and an FPGA device with an independently regulated BRAM
voltage rail (the substrate for Section III undervolting).
"""

from repro.hardware.power import (
    EnergyAccount,
    PowerDistributionUnit,
    PowerMeter,
    PowerSample,
    PowerSpy,
)
from repro.hardware.microserver import (
    DeviceKind,
    Microserver,
    MicroserverSpec,
    WorkloadKind,
    MICROSERVER_CATALOG,
    make_microserver,
)
from repro.hardware.carrier import Carrier, CarrierKind
from repro.hardware.network import (
    ComputeNetwork,
    HighSpeedLink,
    ManagementNetwork,
    NetworkFabric,
)
from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.hardware.fpga import BramArray, FpgaDevice, FpgaFabricRegion
from repro.hardware.edge_server import EdgeServer, EdgeServerConfig

__all__ = [
    "EnergyAccount",
    "PowerDistributionUnit",
    "PowerMeter",
    "PowerSample",
    "PowerSpy",
    "DeviceKind",
    "Microserver",
    "MicroserverSpec",
    "WorkloadKind",
    "MICROSERVER_CATALOG",
    "make_microserver",
    "Carrier",
    "CarrierKind",
    "ComputeNetwork",
    "HighSpeedLink",
    "ManagementNetwork",
    "NetworkFabric",
    "RecsBox",
    "RecsBoxConfig",
    "BramArray",
    "FpgaDevice",
    "FpgaFabricRegion",
    "EdgeServer",
    "EdgeServerConfig",
]
