"""FPGA device model with an independently regulated BRAM voltage rail.

Section III of the paper studies aggressive undervolting of FPGA on-chip
memories (Block RAMs).  The experiments rely on three properties of the real
devices that this model reproduces:

* BRAMs are a large set of small SRAM blocks (36 kbit each on the studied
  28 nm Xilinx parts) whose supply rail ``VCCBRAM`` can be scaled
  independently of the rest of the fabric,
* dynamic power is quadratic in the supply voltage, so undervolting yields
  large savings,
* below a per-device minimum safe voltage the content of *some* BRAMs starts
  to flip bits, and below a crash voltage the device stops responding (the
  DONE pin is unset).

The voltage-to-fault-rate behaviour itself (guardband / critical / crash
regions and the exponential fault-rate growth) lives in
:mod:`repro.undervolting`; this module provides the device being undervolted:
its BRAM array, its data contents for fault injection, and its power model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: capacity of a single BRAM block in kilobits (Xilinx 36 kbit blocks).
BRAM_BLOCK_KBITS = 36

#: nominal BRAM supply voltage for all 28 nm platforms studied (volts).
NOMINAL_VCCBRAM = 1.0

#: exponent of the BRAM power-vs-voltage scaling.  Pure dynamic power would
#: scale with V^2; the measured rail power in the paper's characterisation
#: drops by more than 90 % between 1.0 V and Vcrash (~0.54 V) because
#: leakage and regulator losses shrink as well, so the model uses a single
#: super-quadratic exponent fitted to that corner.
POWER_SCALING_EXPONENT = 3.8


@dataclass(frozen=True)
class FpgaFabricRegion:
    """A reconfigurable-fabric resource budget (LUTs, FFs, DSPs, BRAM blocks).

    Used by the HLS estimator (:mod:`repro.compiler.hls`) to decide whether a
    generated accelerator fits the device and at what clock it can run.
    """

    luts: int
    flip_flops: int
    dsp_slices: int
    bram_blocks: int

    def __post_init__(self) -> None:
        for name, value in (
            ("luts", self.luts),
            ("flip_flops", self.flip_flops),
            ("dsp_slices", self.dsp_slices),
            ("bram_blocks", self.bram_blocks),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def fits(self, other: "FpgaFabricRegion") -> bool:
        """Whether a demand (``other``) fits inside this budget."""
        return (
            other.luts <= self.luts
            and other.flip_flops <= self.flip_flops
            and other.dsp_slices <= self.dsp_slices
            and other.bram_blocks <= self.bram_blocks
        )

    def utilisation(self, demand: "FpgaFabricRegion") -> float:
        """Max fractional utilisation across resource classes."""
        fractions = []
        for avail, used in (
            (self.luts, demand.luts),
            (self.flip_flops, demand.flip_flops),
            (self.dsp_slices, demand.dsp_slices),
            (self.bram_blocks, demand.bram_blocks),
        ):
            if avail == 0:
                if used > 0:
                    return math.inf
                continue
            fractions.append(used / avail)
        return max(fractions) if fractions else 0.0


class BramArray:
    """The on-chip memory of one FPGA as an array of 36 kbit BRAM blocks.

    The array holds actual bit content (a packed NumPy array) so that the
    undervolting fault injector can flip real bits and applications (e.g. the
    undervolted DNN inference study) can observe the corruption.
    """

    def __init__(self, num_blocks: int, rng: Optional[np.random.Generator] = None) -> None:
        if num_blocks <= 0:
            raise ValueError("a BRAM array needs at least one block")
        self.num_blocks = num_blocks
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bits_per_block = BRAM_BLOCK_KBITS * 1024
        # Content is stored as uint8 words, 8 bits each.
        self._words_per_block = self._bits_per_block // 8
        self._content = np.zeros((num_blocks, self._words_per_block), dtype=np.uint8)
        self._fault_log: List[Tuple[int, int, int]] = []  # (block, word, bit)

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    @property
    def total_kbits(self) -> int:
        return self.num_blocks * BRAM_BLOCK_KBITS

    @property
    def total_mbits(self) -> float:
        return self.total_kbits / 1024.0

    @property
    def total_bits(self) -> int:
        return self.num_blocks * self._bits_per_block

    # ------------------------------------------------------------------ #
    # Content access
    # ------------------------------------------------------------------ #
    def write_pattern(self, pattern: int = 0x55) -> None:
        """Fill every block with a byte pattern (test pattern used in §III)."""
        if not (0 <= pattern <= 0xFF):
            raise ValueError("pattern must be one byte")
        self._content[:] = np.uint8(pattern)

    def write_block(self, block: int, data: np.ndarray) -> None:
        """Write raw bytes into one block (truncated/padded to block size)."""
        self._check_block(block)
        flat = np.asarray(data, dtype=np.uint8).ravel()
        n = min(flat.size, self._words_per_block)
        self._content[block, :n] = flat[:n]
        if n < self._words_per_block:
            self._content[block, n:] = 0

    def read_block(self, block: int) -> np.ndarray:
        self._check_block(block)
        return self._content[block].copy()

    def _check_block(self, block: int) -> None:
        if not (0 <= block < self.num_blocks):
            raise IndexError(f"block {block} out of range [0, {self.num_blocks})")

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def inject_bit_flips(self, num_faults: int) -> List[Tuple[int, int, int]]:
        """Flip ``num_faults`` uniformly random bits; returns their locations.

        Real undervolting faults cluster in voltage-weak BRAM blocks; a
        uniform distribution is the simplification used here and is
        sufficient for the fault-rate statistics of Fig. 5 (which count
        faults, not their spatial correlation).
        """
        if num_faults < 0:
            raise ValueError("fault count must be non-negative")
        locations: List[Tuple[int, int, int]] = []
        for _ in range(num_faults):
            block = int(self._rng.integers(0, self.num_blocks))
            word = int(self._rng.integers(0, self._words_per_block))
            bit = int(self._rng.integers(0, 8))
            self._content[block, word] ^= np.uint8(1 << bit)
            locations.append((block, word, bit))
        self._fault_log.extend(locations)
        return locations

    def count_mismatches(self, pattern: int = 0x55) -> int:
        """Count bit positions differing from a uniform byte pattern."""
        expected = np.uint8(pattern)
        xor = np.bitwise_xor(self._content, expected)
        return int(np.unpackbits(xor).sum())

    @property
    def fault_log(self) -> Sequence[Tuple[int, int, int]]:
        return tuple(self._fault_log)

    def clear_faults(self) -> None:
        self._fault_log.clear()


@dataclass
class FpgaDevice:
    """One FPGA board: fabric budget, BRAM array, and supply-rail state.

    Attributes:
        name: board name (e.g. ``"VC707"``).
        fabric: available reconfigurable resources.
        bram: the on-chip memory array.
        vccbram: current BRAM supply voltage in volts.
        vccint: current core fabric voltage in volts (not swept in §III but
            tracked because the power model needs it).
        static_power_w: leakage + I/O power, independent of the BRAM rail.
        bram_dynamic_power_w_nominal: dynamic power of the BRAM subsystem at
            the nominal 1.0 V rail; scales quadratically with voltage.
        clock_mhz: fabric clock frequency.
        responsive: False once the device has crashed (DONE pin unset).
    """

    name: str
    fabric: FpgaFabricRegion
    bram: BramArray
    vccbram: float = NOMINAL_VCCBRAM
    vccint: float = 1.0
    static_power_w: float = 3.0
    bram_dynamic_power_w_nominal: float = 2.0
    clock_mhz: float = 200.0
    responsive: bool = True

    def __post_init__(self) -> None:
        if self.static_power_w < 0 or self.bram_dynamic_power_w_nominal < 0:
            raise ValueError("power figures must be non-negative")
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")

    # ------------------------------------------------------------------ #
    # Voltage control
    # ------------------------------------------------------------------ #
    def set_vccbram(self, volts: float) -> None:
        """Set the BRAM rail voltage (the regulator accepts 0.5-1.1 V)."""
        if not (0.5 <= volts <= 1.1):
            raise ValueError(f"VCCBRAM {volts} V outside regulator range [0.5, 1.1]")
        self.vccbram = volts

    def crash(self) -> None:
        """Mark the device unresponsive (reached the crash region)."""
        self.responsive = False

    def reset(self) -> None:
        """Power-cycle: restore nominal voltage and responsiveness."""
        self.vccbram = NOMINAL_VCCBRAM
        self.responsive = True
        self.bram.clear_faults()

    # ------------------------------------------------------------------ #
    # Power model
    # ------------------------------------------------------------------ #
    def bram_power_w(self) -> float:
        """BRAM subsystem power at the current rail voltage.

        Dynamic power scales quadratically with the rail voltage; the
        measured saving the paper reports (>90 % at Vcrash vs Vnom) also
        includes the leakage and regulator-loss reduction, which the model
        folds into :data:`POWER_SCALING_EXPONENT`.
        """
        ratio = self.vccbram / NOMINAL_VCCBRAM
        return self.bram_dynamic_power_w_nominal * ratio**POWER_SCALING_EXPONENT

    def total_power_w(self) -> float:
        return self.static_power_w + self.bram_power_w()

    def bram_power_saving_fraction(self) -> float:
        """Fractional BRAM power saving versus the nominal rail voltage."""
        nominal = self.bram_dynamic_power_w_nominal
        if nominal == 0:
            return 0.0
        return 1.0 - self.bram_power_w() / nominal

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FpgaDevice({self.name}, VCCBRAM={self.vccbram:.3f} V, "
            f"bram={self.bram.total_mbits:.1f} Mbit, responsive={self.responsive})"
        )
