"""Interconnect models for the RECS|BOX and edge platforms.

The paper's Fig. 4 shows three networks stitched through the backplane:

* a **high-speed low-latency network** (PCIe, high-speed serial) used for
  host-to-host communication between microservers on the same or adjacent
  carriers,
* a **compute network** (up to 40 GbE) connecting every microserver,
* a **management network** (KVM, monitoring) used by the middleware.

The models here turn byte counts into transfer latencies and energy, which
is what the checkpointing layer, the runtime's data movement accounting and
the HEATS migration cost model need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


def _transfer_time_s(size_bytes: float, bandwidth_gbps: float, latency_s: float) -> float:
    """Latency + size/bandwidth transfer model.

    ``bandwidth_gbps`` is in gigabits per second, so one GB takes 8 /
    bandwidth seconds plus the fixed per-message latency.
    """
    if size_bytes < 0:
        raise ValueError("transfer size must be non-negative")
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    return latency_s + (size_bytes * 8.0) / (bandwidth_gbps * 1e9)


@dataclass(frozen=True)
class LinkStats:
    """Accumulated traffic statistics of one link."""

    messages: int = 0
    bytes_moved: float = 0.0
    busy_time_s: float = 0.0
    energy_j: float = 0.0


class _Link:
    """Shared behaviour for the three interconnect classes."""

    #: link bandwidth in Gbit/s.
    bandwidth_gbps: float = 10.0
    #: per-message latency in seconds.
    latency_s: float = 10e-6
    #: transfer energy in nanojoules per byte moved.
    energy_nj_per_byte: float = 5.0

    def __init__(self, name: str) -> None:
        self.name = name
        self._messages = 0
        self._bytes = 0.0
        self._busy_s = 0.0
        self._energy_j = 0.0

    def transfer(self, size_bytes: float) -> float:
        """Move ``size_bytes`` over the link; returns the transfer time in seconds."""
        duration = _transfer_time_s(size_bytes, self.bandwidth_gbps, self.latency_s)
        self._messages += 1
        self._bytes += size_bytes
        self._busy_s += duration
        self._energy_j += size_bytes * self.energy_nj_per_byte * 1e-9
        return duration

    @property
    def stats(self) -> LinkStats:
        return LinkStats(
            messages=self._messages,
            bytes_moved=self._bytes,
            busy_time_s=self._busy_s,
            energy_j=self._energy_j,
        )

    def reset(self) -> None:
        self._messages = 0
        self._bytes = 0.0
        self._busy_s = 0.0
        self._energy_j = 0.0


class HighSpeedLink(_Link):
    """PCIe / high-speed serial host-to-host link (low latency, high bandwidth)."""

    bandwidth_gbps = 64.0
    latency_s = 1e-6
    energy_nj_per_byte = 2.0


class ComputeNetwork(_Link):
    """Up-to-40 GbE compute network connecting all microservers."""

    bandwidth_gbps = 40.0
    latency_s = 20e-6
    energy_nj_per_byte = 8.0


class ManagementNetwork(_Link):
    """1 GbE management network (KVM, monitoring); never used for bulk data."""

    bandwidth_gbps = 1.0
    latency_s = 100e-6
    energy_nj_per_byte = 12.0

    #: monitoring messages are small; this is the default telemetry payload.
    telemetry_bytes: int = 512

    def telemetry(self) -> float:
        """Send one telemetry message; returns its transfer time."""
        return self.transfer(self.telemetry_bytes)


@dataclass
class NetworkFabric:
    """The composed interconnect of one enclosure.

    Route selection mirrors the platform: node pairs on the same carrier (or
    explicitly bridged by PCIe host-to-host links, as in the edge server) use
    the high-speed link, every other pair uses the compute network, and
    telemetry always uses the management network.
    """

    high_speed: HighSpeedLink = field(default_factory=lambda: HighSpeedLink("hs"))
    compute: ComputeNetwork = field(default_factory=lambda: ComputeNetwork("eth"))
    management: ManagementNetwork = field(default_factory=lambda: ManagementNetwork("mgmt"))
    #: set of frozenset({node_a, node_b}) pairs bridged by host-to-host PCIe.
    pcie_pairs: set = field(default_factory=set)
    #: mapping node_id -> carrier_id used for same-carrier routing decisions.
    carrier_of: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Topology construction
    # ------------------------------------------------------------------ #
    def register_node(self, node_id: str, carrier_id: str) -> None:
        self.carrier_of[node_id] = carrier_id

    def bridge(self, node_a: str, node_b: str) -> None:
        """Declare a direct PCIe host-to-host bridge between two nodes."""
        if node_a == node_b:
            raise ValueError("cannot bridge a node to itself")
        self.pcie_pairs.add(frozenset((node_a, node_b)))

    def same_carrier(self, node_a: str, node_b: str) -> bool:
        carrier_a = self.carrier_of.get(node_a)
        carrier_b = self.carrier_of.get(node_b)
        return carrier_a is not None and carrier_a == carrier_b

    def is_bridged(self, node_a: str, node_b: str) -> bool:
        return frozenset((node_a, node_b)) in self.pcie_pairs

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def route(self, src: str, dst: str) -> _Link:
        """Pick the link a transfer between two nodes uses."""
        if src == dst:
            # Local "transfer": modelled as the high-speed link with zero cost
            # handled by the caller; returning high_speed keeps accounting simple.
            return self.high_speed
        if self.is_bridged(src, dst) or self.same_carrier(src, dst):
            return self.high_speed
        return self.compute

    def transfer(self, src: str, dst: str, size_bytes: float) -> float:
        """Move data between nodes; returns the transfer time in seconds."""
        if src == dst:
            return 0.0
        return self.route(src, dst).transfer(size_bytes)

    def broadcast(self, src: str, destinations: Iterable[str], size_bytes: float) -> float:
        """Send the same payload to several nodes; returns total elapsed time.

        Transfers to distinct destinations are serialised on the source's
        NIC, which is the pessimistic but simple model the checkpoint layer
        uses for partner-copy replication.
        """
        total = 0.0
        for dst in destinations:
            total += self.transfer(src, dst, size_bytes)
        return total

    def total_energy_j(self) -> float:
        return (
            self.high_speed.stats.energy_j
            + self.compute.stats.energy_j
            + self.management.stats.energy_j
        )

    def total_bytes(self) -> float:
        return (
            self.high_speed.stats.bytes_moved
            + self.compute.stats.bytes_moved
            + self.management.stats.bytes_moved
        )
