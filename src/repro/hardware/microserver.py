"""Microserver models: the compute building blocks of the RECS|BOX platform.

The RECS|BOX hosts heterogeneous, modular microserver nodes (paper Fig. 4):

* high-performance microservers on COM Express carriers -- x86 CPUs,
  ARM v8 CPUs, FPGA SoCs,
* low-power microservers on Apalis / Jetson form factors -- ARM SoCs,
  GPU SoCs, FPGA SoCs,
* GPU accelerators on PCIe expansion carriers.

Each microserver is modelled by a :class:`MicroserverSpec` describing its
compute throughput per *workload kind* (how fast it runs CPU-bound,
data-parallel, DNN-inference, streaming-dataflow or cryptographic work), its
idle and peak power, its memory capacity and its host-to-host link bandwidth.
The specs in :data:`MICROSERVER_CATALOG` are calibrated to publicly known
figures for the device classes the paper names (Xeon-class x86, ARM64
server CPUs, GTX-1080-class GPUs, Jetson-class GPU SoCs, Kintex/Zynq-class
FPGAs) -- the absolute numbers are approximations, but the *relative*
ordering (which device is most energy-efficient for which workload kind)
is what the LEGaTO runtime and HEATS scheduler exploit, and that ordering
is preserved.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.hardware.power import EnergyAccount


class DeviceKind(str, enum.Enum):
    """The device classes the LEGaTO stack schedules onto."""

    CPU_X86 = "cpu_x86"
    CPU_ARM = "cpu_arm"
    GPU = "gpu"
    GPU_SOC = "gpu_soc"
    FPGA = "fpga"
    FPGA_SOC = "fpga_soc"
    DFE = "dfe"  # Maxeler-style dataflow engine

    @property
    def is_cpu(self) -> bool:
        return self in (DeviceKind.CPU_X86, DeviceKind.CPU_ARM)

    @property
    def is_gpu(self) -> bool:
        return self in (DeviceKind.GPU, DeviceKind.GPU_SOC)

    @property
    def is_fpga(self) -> bool:
        return self in (DeviceKind.FPGA, DeviceKind.FPGA_SOC, DeviceKind.DFE)


class WorkloadKind(str, enum.Enum):
    """Coarse workload classes with distinct device affinities."""

    SCALAR = "scalar"          # branchy, latency-bound CPU work
    DATA_PARALLEL = "data_parallel"  # dense numeric kernels
    DNN_INFERENCE = "dnn_inference"  # convolutional / matrix inference
    STREAMING = "streaming"    # dataflow / pipelined streaming kernels
    CRYPTO = "crypto"          # symmetric crypto / hashing
    MEMORY_BOUND = "memory_bound"    # stencil / bandwidth-bound work


@dataclass(frozen=True)
class MicroserverSpec:
    """Static description of one microserver model.

    Attributes:
        model: human-readable model name (catalog key).
        kind: device class.
        cores: number of general-purpose cores exposed to the runtime.
        memory_gib: DRAM capacity in GiB.
        idle_power_w: power draw when idle.
        peak_power_w: power draw at full utilisation.
        throughput_gops: sustained throughput in Gop/s per workload kind.
        link_bandwidth_gbps: host-to-host (PCIe / serial) bandwidth in Gbit/s.
        form_factor: "low_power" (Apalis/Jetson) or "high_performance"
            (COM Express / COM-HPC) -- determines which carrier accepts it.
    """

    model: str
    kind: DeviceKind
    cores: int
    memory_gib: float
    idle_power_w: float
    peak_power_w: float
    throughput_gops: Mapping[WorkloadKind, float]
    link_bandwidth_gbps: float = 32.0
    form_factor: str = "high_performance"

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("microserver must expose at least one core")
        if self.memory_gib <= 0:
            raise ValueError("memory capacity must be positive")
        if not (0.0 <= self.idle_power_w <= self.peak_power_w):
            raise ValueError(
                f"power range invalid: idle={self.idle_power_w}, peak={self.peak_power_w}"
            )
        if self.form_factor not in ("low_power", "high_performance"):
            raise ValueError(f"unknown form factor {self.form_factor!r}")
        missing = [k for k in WorkloadKind if k not in self.throughput_gops]
        if missing:
            raise ValueError(f"spec {self.model!r} missing throughput for {missing}")
        for kind, gops in self.throughput_gops.items():
            if gops <= 0:
                raise ValueError(f"throughput for {kind} must be positive, got {gops}")

    # ------------------------------------------------------------------ #
    # Derived performance / energy figures
    # ------------------------------------------------------------------ #
    def execution_time_s(self, workload: WorkloadKind, gops: float) -> float:
        """Time to execute ``gops`` giga-operations of the given workload kind."""
        if gops < 0:
            raise ValueError("work amount must be non-negative")
        return gops / self.throughput_gops[workload]

    def active_power_w(self, utilisation: float = 1.0) -> float:
        """Linear idle-to-peak power model at the given utilisation."""
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be within [0, 1]")
        return self.idle_power_w + utilisation * (self.peak_power_w - self.idle_power_w)

    def energy_j(self, workload: WorkloadKind, gops: float, utilisation: float = 1.0) -> float:
        """Energy to execute the work, charging active power for its duration."""
        return self.execution_time_s(workload, gops) * self.active_power_w(utilisation)

    def efficiency_gops_per_w(self, workload: WorkloadKind) -> float:
        """Peak energy efficiency for the workload kind (Gop/s per watt)."""
        return self.throughput_gops[workload] / self.peak_power_w


def _throughput(
    scalar: float,
    data_parallel: float,
    dnn: float,
    streaming: float,
    crypto: float,
    memory_bound: float,
) -> Dict[WorkloadKind, float]:
    return {
        WorkloadKind.SCALAR: scalar,
        WorkloadKind.DATA_PARALLEL: data_parallel,
        WorkloadKind.DNN_INFERENCE: dnn,
        WorkloadKind.STREAMING: streaming,
        WorkloadKind.CRYPTO: crypto,
        WorkloadKind.MEMORY_BOUND: memory_bound,
    }


#: Catalogue of microserver models used across experiments.  Throughputs are
#: sustained Gop/s for each workload class; the calibration targets the
#: qualitative ordering the paper relies on (GPUs dominate DNN throughput,
#: FPGAs dominate DNN and streaming *efficiency*, ARM SoCs dominate idle
#: power, x86 dominates scalar latency).
MICROSERVER_CATALOG: Dict[str, MicroserverSpec] = {
    # High-performance COM Express x86 CPU (Xeon-D class).
    "xeon-d-x86": MicroserverSpec(
        model="xeon-d-x86",
        kind=DeviceKind.CPU_X86,
        cores=16,
        memory_gib=64.0,
        idle_power_w=25.0,
        peak_power_w=90.0,
        throughput_gops=_throughput(
            scalar=120.0, data_parallel=450.0, dnn=300.0,
            streaming=150.0, crypto=80.0, memory_bound=60.0,
        ),
        link_bandwidth_gbps=64.0,
        form_factor="high_performance",
    ),
    # ARM v8 server CPU microserver.
    "arm64-server": MicroserverSpec(
        model="arm64-server",
        kind=DeviceKind.CPU_ARM,
        cores=32,
        memory_gib=32.0,
        idle_power_w=12.0,
        peak_power_w=45.0,
        throughput_gops=_throughput(
            scalar=80.0, data_parallel=320.0, dnn=220.0,
            streaming=120.0, crypto=60.0, memory_bound=45.0,
        ),
        link_bandwidth_gbps=32.0,
        form_factor="high_performance",
    ),
    # Discrete workstation GPU (GTX-1080 class) on a PCIe expansion carrier.
    "gtx1080-gpu": MicroserverSpec(
        model="gtx1080-gpu",
        kind=DeviceKind.GPU,
        cores=2560,
        memory_gib=8.0,
        idle_power_w=45.0,
        peak_power_w=180.0,
        throughput_gops=_throughput(
            scalar=20.0, data_parallel=6000.0, dnn=8000.0,
            streaming=2500.0, crypto=400.0, memory_bound=320.0,
        ),
        link_bandwidth_gbps=128.0,
        form_factor="high_performance",
    ),
    # Jetson-class low-power GPU SoC.
    "jetson-gpu-soc": MicroserverSpec(
        model="jetson-gpu-soc",
        kind=DeviceKind.GPU_SOC,
        cores=256,
        memory_gib=8.0,
        idle_power_w=4.0,
        peak_power_w=22.0,
        throughput_gops=_throughput(
            scalar=15.0, data_parallel=900.0, dnn=1300.0,
            streaming=450.0, crypto=70.0, memory_bound=55.0,
        ),
        link_bandwidth_gbps=16.0,
        form_factor="low_power",
    ),
    # Kintex-class mid-range FPGA microserver.
    "kintex-fpga": MicroserverSpec(
        model="kintex-fpga",
        kind=DeviceKind.FPGA,
        cores=4,
        memory_gib=16.0,
        idle_power_w=8.0,
        peak_power_w=35.0,
        throughput_gops=_throughput(
            scalar=5.0, data_parallel=1200.0, dnn=2200.0,
            streaming=3200.0, crypto=900.0, memory_bound=90.0,
        ),
        link_bandwidth_gbps=40.0,
        form_factor="high_performance",
    ),
    # Zynq-class FPGA SoC (CPU + programmable logic) low-power module.
    "zynq-fpga-soc": MicroserverSpec(
        model="zynq-fpga-soc",
        kind=DeviceKind.FPGA_SOC,
        cores=4,
        memory_gib=4.0,
        idle_power_w=3.0,
        peak_power_w=12.0,
        throughput_gops=_throughput(
            scalar=12.0, data_parallel=300.0, dnn=600.0,
            streaming=900.0, crypto=350.0, memory_bound=25.0,
        ),
        link_bandwidth_gbps=10.0,
        form_factor="low_power",
    ),
    # Apalis-class ARM SoC low-power CPU module.
    "apalis-arm-soc": MicroserverSpec(
        model="apalis-arm-soc",
        kind=DeviceKind.CPU_ARM,
        cores=4,
        memory_gib=4.0,
        idle_power_w=1.5,
        peak_power_w=7.0,
        throughput_gops=_throughput(
            scalar=10.0, data_parallel=35.0, dnn=25.0,
            streaming=18.0, crypto=9.0, memory_bound=6.0,
        ),
        link_bandwidth_gbps=5.0,
        form_factor="low_power",
    ),
    # Maxeler-style dataflow engine.
    "maxeler-dfe": MicroserverSpec(
        model="maxeler-dfe",
        kind=DeviceKind.DFE,
        cores=1,
        memory_gib=48.0,
        idle_power_w=20.0,
        peak_power_w=65.0,
        throughput_gops=_throughput(
            scalar=2.0, data_parallel=2500.0, dnn=3000.0,
            streaming=6000.0, crypto=1500.0, memory_bound=200.0,
        ),
        link_bandwidth_gbps=64.0,
        form_factor="high_performance",
    ),
}


_microserver_ids = itertools.count()


def _next_microserver_id(model: str) -> str:
    return f"{model}#{next(_microserver_ids)}"


@dataclass
class Microserver:
    """A microserver instance: a spec plus runtime state (load, energy).

    Instances are what carriers host and what the runtime/scheduler place
    work onto.  The instance tracks busy time per simulated clock, resident
    memory, and an :class:`EnergyAccount` charged by the hardware models.
    """

    spec: MicroserverSpec
    node_id: str = ""
    energy: EnergyAccount = field(default_factory=lambda: EnergyAccount("microserver"))
    busy_until_s: float = 0.0
    allocated_memory_gib: float = 0.0
    _running_tasks: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.node_id:
            self.node_id = _next_microserver_id(self.spec.model)
        self.energy = EnergyAccount(name=self.node_id)

    # ------------------------------------------------------------------ #
    # Capacity accounting
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> DeviceKind:
        return self.spec.kind

    @property
    def available_memory_gib(self) -> float:
        return self.spec.memory_gib - self.allocated_memory_gib

    def can_fit(self, memory_gib: float) -> bool:
        return memory_gib <= self.available_memory_gib + 1e-9

    def reserve_memory(self, memory_gib: float) -> None:
        if memory_gib < 0:
            raise ValueError("memory reservation must be non-negative")
        if not self.can_fit(memory_gib):
            raise ValueError(
                f"{self.node_id}: cannot reserve {memory_gib} GiB, "
                f"only {self.available_memory_gib:.1f} GiB free"
            )
        self.allocated_memory_gib += memory_gib

    def release_memory(self, memory_gib: float) -> None:
        if memory_gib < 0:
            raise ValueError("memory release must be non-negative")
        self.allocated_memory_gib = max(0.0, self.allocated_memory_gib - memory_gib)

    # ------------------------------------------------------------------ #
    # Execution model
    # ------------------------------------------------------------------ #
    def is_idle_at(self, time_s: float) -> bool:
        return time_s >= self.busy_until_s

    def execute(
        self,
        workload: WorkloadKind,
        gops: float,
        start_s: float,
        utilisation: float = 1.0,
        label: str = "",
    ) -> Tuple[float, float]:
        """Run a unit of work; returns (finish_time_s, energy_j).

        The work starts at ``max(start_s, busy_until_s)`` (the microserver is
        a serial resource at this granularity), runs for the spec's execution
        time, and the consumed energy is charged to the instance's account.
        """
        begin = max(start_s, self.busy_until_s)
        duration = self.spec.execution_time_s(workload, gops)
        energy = self.spec.energy_j(workload, gops, utilisation)
        finish = begin + duration
        self.busy_until_s = finish
        self.energy.charge(energy)
        if label:
            self._running_tasks.append(label)
        return finish, energy

    def idle_energy_j(self, duration_s: float) -> float:
        """Charge idle power for a duration and return the joules charged."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        energy = self.spec.idle_power_w * duration_s
        self.energy.charge(energy)
        return energy

    @property
    def executed_labels(self) -> Tuple[str, ...]:
        return tuple(self._running_tasks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Microserver({self.node_id}, kind={self.spec.kind.value})"


def make_microserver(model: str, node_id: str = "") -> Microserver:
    """Instantiate a microserver from the catalogue by model name."""
    try:
        spec = MICROSERVER_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(MICROSERVER_CATALOG))
        raise KeyError(f"unknown microserver model {model!r}; known models: {known}") from None
    return Microserver(spec=spec, node_id=node_id)


def most_efficient_for(
    workload: WorkloadKind, candidates: Optional[Iterable[MicroserverSpec]] = None
) -> MicroserverSpec:
    """Return the catalogue spec with the best Gop/s-per-watt for a workload."""
    pool = list(candidates) if candidates is not None else list(MICROSERVER_CATALOG.values())
    if not pool:
        raise ValueError("no candidate microservers supplied")
    return max(pool, key=lambda spec: spec.efficiency_gops_per_w(workload))
