"""Carrier boards: the slots that host microservers inside a RECS|BOX.

The RECS architecture (paper Fig. 4) composes the server out of carriers
plugged into a backplane:

* **low-power carriers** host up to 16 low-power microservers
  (Apalis / Jetson form factor),
* **high-performance carriers** host up to 3 COM Express microservers,
* **PCIe expansion carriers** host accelerators such as discrete GPUs.

Carriers enforce form-factor and slot-count constraints and carry a power
budget, which is how the platform model keeps compositions physically
plausible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.hardware.microserver import Microserver
from repro.hardware.power import PowerBudget


class CarrierKind(str, enum.Enum):
    """The three carrier flavours of the RECS|BOX."""

    LOW_POWER = "low_power"
    HIGH_PERFORMANCE = "high_performance"
    PCIE_EXPANSION = "pcie_expansion"


#: slot count per carrier kind (paper Fig. 4: 16 low-power, 3 high-performance).
_CARRIER_SLOTS: Dict[CarrierKind, int] = {
    CarrierKind.LOW_POWER: 16,
    CarrierKind.HIGH_PERFORMANCE: 3,
    CarrierKind.PCIE_EXPANSION: 2,
}

#: per-carrier power budget in watts (enclosure-level engineering limits).
_CARRIER_POWER_W: Dict[CarrierKind, float] = {
    CarrierKind.LOW_POWER: 250.0,
    CarrierKind.HIGH_PERFORMANCE: 450.0,
    CarrierKind.PCIE_EXPANSION: 400.0,
}

#: which microserver form factors a carrier kind accepts.
_ACCEPTED_FORM_FACTORS: Dict[CarrierKind, frozenset] = {
    CarrierKind.LOW_POWER: frozenset({"low_power"}),
    CarrierKind.HIGH_PERFORMANCE: frozenset({"high_performance"}),
    CarrierKind.PCIE_EXPANSION: frozenset({"high_performance"}),
}


@dataclass
class Carrier:
    """A carrier board holding microservers under slot and power constraints."""

    kind: CarrierKind
    carrier_id: str
    slots: int = 0
    power_budget: PowerBudget = field(init=False)
    _microservers: List[Microserver] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.slots <= 0:
            self.slots = _CARRIER_SLOTS[self.kind]
        self.power_budget = PowerBudget(cap_w=_CARRIER_POWER_W[self.kind])

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    @property
    def microservers(self) -> List[Microserver]:
        return list(self._microservers)

    @property
    def free_slots(self) -> int:
        return self.slots - len(self._microservers)

    def accepts(self, microserver: Microserver) -> bool:
        """Whether the microserver's form factor fits this carrier kind."""
        return microserver.spec.form_factor in _ACCEPTED_FORM_FACTORS[self.kind]

    def install(self, microserver: Microserver) -> None:
        """Install a microserver, enforcing slot, form-factor and power limits."""
        if self.free_slots <= 0:
            raise ValueError(f"carrier {self.carrier_id} has no free slots")
        if not self.accepts(microserver):
            raise ValueError(
                f"carrier {self.carrier_id} ({self.kind.value}) does not accept "
                f"form factor {microserver.spec.form_factor!r}"
            )
        self.power_budget.allocate(microserver.node_id, microserver.spec.peak_power_w)
        self._microservers.append(microserver)

    def remove(self, node_id: str) -> Microserver:
        """Remove the microserver with the given id, releasing its power."""
        for index, microserver in enumerate(self._microservers):
            if microserver.node_id == node_id:
                self.power_budget.release(node_id)
                return self._microservers.pop(index)
        raise KeyError(f"carrier {self.carrier_id} hosts no microserver {node_id!r}")

    def __iter__(self) -> Iterator[Microserver]:
        return iter(self._microservers)

    def __len__(self) -> int:
        return len(self._microservers)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def peak_power_w(self) -> float:
        return sum(m.spec.peak_power_w for m in self._microservers)

    def idle_power_w(self) -> float:
        return sum(m.spec.idle_power_w for m in self._microservers)

    def total_energy_j(self) -> float:
        return sum(m.energy.total_energy_j() for m in self._microservers)

    def find(self, node_id: str) -> Optional[Microserver]:
        for microserver in self._microservers:
            if microserver.node_id == node_id:
                return microserver
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Carrier({self.carrier_id}, kind={self.kind.value}, "
            f"occupied={len(self._microservers)}/{self.slots})"
        )
