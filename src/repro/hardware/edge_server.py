"""The LEGaTO edge server (paper Fig. 9), sized for the Smart Mirror use case.

The edge server is a compact (~20x40 cm) enclosure with three modular
COM-HPC microservers connected pairwise by PCIe in a *host-to-host* fashion:
each microserver is self-sustained and is not merely a PCIe peripheral of
the CPU node.  I/O (two RGBD cameras, USB, microphone, video out) attaches to
the CPU microserver.

The Smart Mirror pipeline (Section VI) maps its stages onto these three
microservers; the paper explicitly calls out that the modular approach lets
one evaluate different compositions, e.g. ``1x CPU + 2x GPU`` or
``1x CPU + 1x GPU + 1x FPGA SoC``.  :meth:`EdgeServerConfig.smart_mirror_*`
build exactly those compositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.hardware.microserver import Microserver, make_microserver
from repro.hardware.network import NetworkFabric
from repro.hardware.power import PowerBudget, PowerSpy

#: the edge enclosure hosts exactly three microserver slots (Fig. 9).
EDGE_SLOTS = 3

#: thermal/power envelope of the compact, fanless-friendly enclosure.
EDGE_POWER_CAP_W = 220.0


@dataclass(frozen=True)
class EdgeServerConfig:
    """Composition of the three edge-server slots, as catalogue model names."""

    name: str
    slots: Tuple[str, str, str]

    @staticmethod
    def smart_mirror_cpu_2gpu() -> "EdgeServerConfig":
        """``1x CPU + 2x GPU SoC`` composition from Section VI."""
        return EdgeServerConfig(
            name="edge-cpu+2gpu", slots=("xeon-d-x86", "jetson-gpu-soc", "jetson-gpu-soc")
        )

    @staticmethod
    def smart_mirror_cpu_gpu_fpga() -> "EdgeServerConfig":
        """``1x CPU + 1x GPU + 1x FPGA SoC`` composition from Section VI."""
        return EdgeServerConfig(
            name="edge-cpu+gpu+fpga", slots=("xeon-d-x86", "jetson-gpu-soc", "zynq-fpga-soc")
        )

    @staticmethod
    def low_power_arm() -> "EdgeServerConfig":
        """An all-low-power composition used in ablations."""
        return EdgeServerConfig(
            name="edge-arm", slots=("apalis-arm-soc", "jetson-gpu-soc", "zynq-fpga-soc")
        )


class EdgeServer:
    """A populated three-slot edge server with host-to-host PCIe links."""

    def __init__(self, config: EdgeServerConfig) -> None:
        if len(config.slots) != EDGE_SLOTS:
            raise ValueError(f"edge server needs exactly {EDGE_SLOTS} microservers")
        self.name = config.name
        self.power_budget = PowerBudget(cap_w=EDGE_POWER_CAP_W)
        self.fabric = NetworkFabric()
        self.meter = PowerSpy(name=f"{config.name}-powerspy")
        self._microservers: List[Microserver] = []
        for index, model in enumerate(config.slots):
            microserver = make_microserver(model, node_id=f"{config.name}-slot{index}-{model}")
            self.power_budget.allocate(microserver.node_id, microserver.spec.peak_power_w)
            self.fabric.register_node(microserver.node_id, carrier_id=self.name)
            self._microservers.append(microserver)
        # Full host-to-host PCIe mesh between the three slots (Fig. 9).
        for i in range(EDGE_SLOTS):
            for j in range(i + 1, EDGE_SLOTS):
                self.fabric.bridge(self._microservers[i].node_id, self._microservers[j].node_id)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def microservers(self) -> Sequence[Microserver]:
        return tuple(self._microservers)

    def __iter__(self) -> Iterator[Microserver]:
        return iter(self._microservers)

    def __len__(self) -> int:
        return len(self._microservers)

    @property
    def cpu_node(self) -> Microserver:
        """The microserver that owns the cameras / I/O (first CPU-kind slot)."""
        for microserver in self._microservers:
            if microserver.spec.kind.is_cpu:
                return microserver
        # Fall back to slot 0 for unusual compositions.
        return self._microservers[0]

    @property
    def accelerators(self) -> List[Microserver]:
        """All non-I/O slots, i.e. everything except :attr:`cpu_node`."""
        return [m for m in self._microservers if m is not self.cpu_node]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def idle_power_w(self) -> float:
        return sum(m.spec.idle_power_w for m in self._microservers)

    def peak_power_w(self) -> float:
        return sum(m.spec.peak_power_w for m in self._microservers)

    def total_energy_j(self) -> float:
        return sum(m.energy.total_energy_j() for m in self._microservers) + self.fabric.total_energy_j()

    def active_power_w(self, utilisations: Optional[Dict[str, float]] = None) -> float:
        """Instantaneous power for per-node utilisations (default: all busy)."""
        utilisations = utilisations or {}
        total = 0.0
        for microserver in self._microservers:
            utilisation = utilisations.get(microserver.node_id, 1.0)
            total += microserver.spec.active_power_w(utilisation)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        models = ", ".join(m.spec.model for m in self._microservers)
        return f"EdgeServer({self.name}: {models})"
