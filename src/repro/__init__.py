"""repro -- reproduction of the LEGaTO heterogeneous-computing toolset.

LEGaTO (Low-Energy, Secure, and Resilient Toolset for Heterogeneous
Computing, DATE 2020) is an integrated hardware/software stack for
energy-efficient, secure, and resilient computing on CPU + GPU + FPGA
platforms.  This package reproduces the stack on top of simulated hardware:

* :mod:`repro.hardware`      -- RECS|BOX microserver platform substrate.
* :mod:`repro.middleware`    -- management firmware and OpenStack-like IaaS
  resource management (Section II.B).
* :mod:`repro.undervolting`  -- aggressive FPGA BRAM undervolting (Section III).
* :mod:`repro.checkpoint`    -- FTI-style transparent GPU/CPU checkpointing
  (Section IV).
* :mod:`repro.runtime`       -- OmpSs / XiTAO-like task-based runtimes
  (Section II.C) with fault-tolerance extensions.
* :mod:`repro.scheduler`     -- HEATS heterogeneity- and energy-aware
  scheduler (Section V).
* :mod:`repro.compiler`      -- task-based dataflow front end and HLS
  estimation (Section II.D/E).
* :mod:`repro.security`      -- enclave-backed secure task execution.
* :mod:`repro.usecases`      -- Smart Mirror and the other LEGaTO use cases
  (Section VI).
* :mod:`repro.serving`       -- multi-tenant request-serving front-end over
  the HEATS cluster (admission, batching, score cache, SLA telemetry).
* :mod:`repro.federation`    -- federated multi-cluster scheduling: many
  HEATS shards behind one two-level scheduler with tenant affinity and
  cross-shard migration.
* :mod:`repro.telemetry`     -- cluster-wide metrics pipeline: O(1)
  counters/gauges/histograms on the hot paths, windowed EWMA/quantile
  rollups, pluggable exporters.
* :mod:`repro.autoscale`     -- elastic shard/node autoscaling: a control
  loop over the telemetry signals with Holt-Winters demand forecasting.
* :mod:`repro.api`           -- the declarative deployment API:
  :class:`DeploymentSpec` (validated, JSON/TOML-round-trippable section
  tree), the backend protocol, and reusable :class:`Deployment` serving
  sessions.
* :mod:`repro.core`          -- the integrated LEGaTO ecosystem facade and
  project-goal metrics.
"""

from repro.autoscale.controller import Autoscaler, AutoscaleReport
from repro.autoscale.policy import AutoscaleConfig
from repro.core.config import LegatoConfig
from repro.core.ecosystem import LegatoSystem
from repro.core.seeding import SeedPolicy
from repro.federation.federation import Federation
from repro.serving.loop import ServingReport, ServingWorkload
from repro.telemetry.registry import MetricsRegistry
from repro.api.deployment import Deployment
from repro.api.spec import DeploymentSpec, SpecValidationError

__version__ = "1.5.0"

__all__ = [
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleReport",
    "Deployment",
    "DeploymentSpec",
    "Federation",
    "LegatoSystem",
    "LegatoConfig",
    "MetricsRegistry",
    "SeedPolicy",
    "ServingReport",
    "ServingWorkload",
    "SpecValidationError",
    "__version__",
]
