"""A minimal simulated MPI world.

The FTI evaluation (Section IV) runs Heat2D as an MPI application with four
ranks per node, one per GPU.  The simulator only needs the parts of MPI that
FTI and Heat2D use: a world with a rank/size, a split communicator
(``FTI_COMM_WORLD`` excludes FTI's dedicated helper ranks in the real
library; here the split is modelled but no helper ranks are created),
barriers, allreduce, and point-to-point halo exchange with a transfer-cost
model so the simulated timeline includes communication.

Everything executes sequentially in one Python process: rank "parallelism"
is simulated by advancing per-rank clocks, which is all the checkpoint
experiment needs (it reports per-phase times, not wall-clock speedups).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: default inter-node network bandwidth (GB/s) and latency for halo exchange.
DEFAULT_NET_BANDWIDTH_GBPS = 5.0
DEFAULT_NET_LATENCY_S = 5e-6


@dataclass
class RankClock:
    """Per-rank simulated clock and accounting."""

    rank: int
    time_s: float = 0.0
    compute_s: float = 0.0
    comm_s: float = 0.0
    io_s: float = 0.0

    def advance(self, seconds: float, category: str = "compute") -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.time_s += seconds
        if category == "compute":
            self.compute_s += seconds
        elif category == "comm":
            self.comm_s += seconds
        elif category == "io":
            self.io_s += seconds
        else:
            raise ValueError(f"unknown time category {category!r}")


class MpiCommunicator:
    """A communicator over a subset of the world's ranks."""

    def __init__(self, world: "MpiWorld", ranks: Sequence[int], name: str = "comm") -> None:
        if not ranks:
            raise ValueError("a communicator needs at least one rank")
        self.world = world
        self.name = name
        self._ranks = tuple(sorted(set(ranks)))

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> Tuple[int, ...]:
        return self._ranks

    def translate(self, world_rank: int) -> int:
        """World rank -> rank within this communicator."""
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            raise KeyError(f"rank {world_rank} not in communicator {self.name}") from None

    # ------------------------------------------------------------------ #
    # Collectives (simulated)
    # ------------------------------------------------------------------ #
    def barrier(self) -> float:
        """Synchronise all member clocks to the latest one; returns that time."""
        latest = max(self.world.clock(rank).time_s for rank in self._ranks)
        for rank in self._ranks:
            clock = self.world.clock(rank)
            clock.advance(latest - clock.time_s, category="comm")
        return latest

    def allreduce(self, values: Dict[int, float], op: str = "sum") -> float:
        """Reduce per-rank scalars; advances clocks by a log(P) latency term."""
        missing = [rank for rank in self._ranks if rank not in values]
        if missing:
            raise KeyError(f"allreduce missing contributions from ranks {missing}")
        contribution = [values[rank] for rank in self._ranks]
        if op == "sum":
            result = float(np.sum(contribution))
        elif op == "max":
            result = float(np.max(contribution))
        elif op == "min":
            result = float(np.min(contribution))
        else:
            raise ValueError(f"unsupported allreduce op {op!r}")
        self.barrier()
        steps = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
        for rank in self._ranks:
            self.world.clock(rank).advance(steps * self.world.net_latency_s, category="comm")
        return result

    def exchange(self, rank_a: int, rank_b: int, size_bytes: float) -> float:
        """Pairwise halo exchange; returns the transfer time charged to both."""
        if rank_a == rank_b:
            return 0.0
        duration = self.world.transfer_time_s(size_bytes)
        for rank in (rank_a, rank_b):
            self.world.clock(rank).advance(duration, category="comm")
        return duration


class MpiWorld:
    """The simulated ``MPI_COMM_WORLD``: rank clocks, topology, transfer model."""

    def __init__(
        self,
        num_ranks: int,
        ranks_per_node: int = 4,
        net_bandwidth_gbps: float = DEFAULT_NET_BANDWIDTH_GBPS,
        net_latency_s: float = DEFAULT_NET_LATENCY_S,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("world needs at least one rank")
        if ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        self.num_ranks = num_ranks
        self.ranks_per_node = ranks_per_node
        self.net_bandwidth_gbps = net_bandwidth_gbps
        self.net_latency_s = net_latency_s
        self._clocks = [RankClock(rank=r) for r in range(num_ranks)]
        self.comm_world = MpiCommunicator(self, list(range(num_ranks)), name="MPI_COMM_WORLD")

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return math.ceil(self.num_ranks / self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def ranks_on_node(self, node: int) -> List[int]:
        return [r for r in range(self.num_ranks) if self.node_of(r) == node]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def partner_rank(self, rank: int) -> int:
        """Partner on the *next* node (used by the L2 partner-copy level)."""
        self._check_rank(rank)
        node = self.node_of(rank)
        offset = rank - node * self.ranks_per_node
        partner_node = (node + 1) % self.num_nodes
        partner = partner_node * self.ranks_per_node + offset
        return partner if partner < self.num_ranks else partner_node * self.ranks_per_node

    # ------------------------------------------------------------------ #
    # Clocks and transfer costs
    # ------------------------------------------------------------------ #
    def clock(self, rank: int) -> RankClock:
        self._check_rank(rank)
        return self._clocks[rank]

    def max_time_s(self) -> float:
        return max(clock.time_s for clock in self._clocks)

    def transfer_time_s(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.net_latency_s + size_bytes / (self.net_bandwidth_gbps * 1e9)

    def split(self, ranks: Iterable[int], name: str = "split") -> MpiCommunicator:
        return MpiCommunicator(self, list(ranks), name=name)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_ranks):
            raise IndexError(f"rank {rank} out of range [0, {self.num_ranks})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MpiWorld(ranks={self.num_ranks}, nodes={self.num_nodes})"
