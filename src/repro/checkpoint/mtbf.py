"""Checkpoint efficiency model: the "7x smaller MTBF" estimate of Section IV.

The paper closes its checkpointing section with: *"Our initial estimations
expect, for the same amount of application overhead, the extended FTI
version can sustain execution in systems with 7 times smaller MTBF."*

That estimate follows from the classic first-order checkpoint/restart
analysis (Young's formula): with checkpoint cost ``C`` and system MTBF
``M``, the optimal checkpoint interval is ``tau = sqrt(2*C*M)`` and the
fraction of time lost to fault tolerance (checkpoint writes + lost work +
restart) is approximately::

    overhead(C, M) = C / tau + tau / (2 * M) + R / M
                   = sqrt(2 * C / M) + R / M

Cutting the checkpoint cost by a factor ``k`` therefore allows the MTBF to
shrink by roughly the same factor ``k`` at equal overhead (with a second-
order correction from the restart term ``R``).  The model here computes the
sustainable-MTBF ratio numerically rather than with the first-order
shortcut, so the reported number reflects both the checkpoint *and* the
recovery speedups of the async path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize


def optimal_interval_young(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 * C * MTBF)``."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("checkpoint cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


@dataclass(frozen=True)
class CheckpointEfficiencyModel:
    """First-order overhead model for one checkpoint configuration.

    Attributes:
        checkpoint_cost_s: application-blocking cost of one checkpoint.
        recovery_cost_s: time to restart from the last checkpoint.
    """

    checkpoint_cost_s: float
    recovery_cost_s: float

    def __post_init__(self) -> None:
        if self.checkpoint_cost_s <= 0 or self.recovery_cost_s < 0:
            raise ValueError("costs must be positive (recovery may be zero)")

    def overhead_fraction(self, mtbf_s: float, interval_s: Optional[float] = None) -> float:
        """Fraction of machine time lost to checkpoints, rework and restarts."""
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        tau = interval_s if interval_s is not None else optimal_interval_young(
            self.checkpoint_cost_s, mtbf_s
        )
        if tau <= 0:
            raise ValueError("checkpoint interval must be positive")
        checkpoint_term = self.checkpoint_cost_s / tau
        rework_term = (tau + self.checkpoint_cost_s) / (2.0 * mtbf_s)
        restart_term = self.recovery_cost_s / mtbf_s
        return checkpoint_term + rework_term + restart_term

    def efficiency(self, mtbf_s: float) -> float:
        """Useful-work fraction at the optimal interval (1 - overhead)."""
        return max(0.0, 1.0 - self.overhead_fraction(mtbf_s))

    def sustainable_mtbf_s(
        self, overhead_budget: float, bracket: tuple = (1.0, 1e9)
    ) -> float:
        """Smallest MTBF whose optimal-interval overhead stays within budget."""
        if not (0.0 < overhead_budget < 1.0):
            raise ValueError("overhead budget must be a fraction in (0, 1)")
        low, high = bracket

        def objective(mtbf: float) -> float:
            return self.overhead_fraction(mtbf) - overhead_budget

        # Overhead decreases monotonically with MTBF; find the crossing.
        if objective(high) > 0:
            raise ValueError("overhead budget unreachable even at the bracket's upper MTBF")
        if objective(low) < 0:
            return low
        return float(optimize.brentq(objective, low, high))


def sustainable_mtbf_ratio(
    initial: CheckpointEfficiencyModel,
    optimised: CheckpointEfficiencyModel,
    overhead_budget: float = 0.05,
) -> float:
    """How much smaller an MTBF the optimised path sustains at equal overhead.

    This is the quantity behind the paper's "7 times smaller MTBF" sentence:
    ``ratio = sustainable_mtbf(initial) / sustainable_mtbf(optimised)``.
    """
    mtbf_initial = initial.sustainable_mtbf_s(overhead_budget)
    mtbf_optimised = optimised.sustainable_mtbf_s(overhead_budget)
    if mtbf_optimised <= 0:
        raise ValueError("optimised sustainable MTBF must be positive")
    return mtbf_initial / mtbf_optimised
