"""Transparent GPU/CPU checkpointing (paper Section IV, Fig. 6).

LEGaTO extends the FTI multilevel checkpoint library so a single
``FTI_Protect`` call handles host memory, CUDA device memory and unified
virtual memory (UVM) transparently: the runtime identifies where each
protected buffer physically lives and moves it to stable storage
accordingly, overlapping the device-to-host transfer with the file write
through streams and chunked asynchronous copies.

Because no GPU, NVMe or MPI cluster is available here, the subpackage builds
the whole substrate as calibrated simulation:

* :mod:`repro.checkpoint.mpi`     -- a simulated MPI world (ranks, barriers).
* :mod:`repro.checkpoint.gpu`     -- a simulated CUDA-like device with
  device/UVM allocations, streams and asynchronous chunked copies.
* :mod:`repro.checkpoint.memory`  -- the buffer abstraction FTI protects.
* :mod:`repro.checkpoint.storage` -- multilevel stable storage (local NVMe,
  partner copy, erasure-coded, parallel file system).
* :mod:`repro.checkpoint.fti`     -- the FTI-style API
  (``init/protect/snapshot/checkpoint/recover/finalize``) with the *initial*
  (blocking) and *async* (optimised) checkpoint paths of Fig. 6.
* :mod:`repro.checkpoint.heat2d`  -- the Heat2D stencil application used for
  the evaluation.
* :mod:`repro.checkpoint.mtbf`    -- the Young/Daly efficiency model behind
  the "7x smaller MTBF" claim.
"""

from repro.checkpoint.mpi import MpiWorld, MpiCommunicator
from repro.checkpoint.memory import MemoryKind, ProtectedBuffer
from repro.checkpoint.gpu import CudaStream, SimulatedGpu, TransferModel
from repro.checkpoint.storage import (
    CheckpointLevel,
    LocalNvme,
    ParallelFileSystem,
    PartnerCopy,
    ReedSolomonEncoded,
    StorageHierarchy,
)
from repro.checkpoint.fti import (
    CheckpointRecord,
    CheckpointStrategy,
    FtiConfig,
    FtiContext,
    FtiDataType,
)
from repro.checkpoint.heat2d import (
    Heat2dSimulation,
    Heat2dConfig,
    run_fig6_experiment,
    run_fig6_point,
)
from repro.checkpoint.mtbf import (
    CheckpointEfficiencyModel,
    optimal_interval_young,
    sustainable_mtbf_ratio,
)

__all__ = [
    "MpiWorld",
    "MpiCommunicator",
    "MemoryKind",
    "ProtectedBuffer",
    "CudaStream",
    "SimulatedGpu",
    "TransferModel",
    "CheckpointLevel",
    "LocalNvme",
    "ParallelFileSystem",
    "PartnerCopy",
    "ReedSolomonEncoded",
    "StorageHierarchy",
    "CheckpointRecord",
    "CheckpointStrategy",
    "FtiConfig",
    "FtiContext",
    "FtiDataType",
    "Heat2dSimulation",
    "Heat2dConfig",
    "run_fig6_experiment",
    "run_fig6_point",
    "CheckpointEfficiencyModel",
    "optimal_interval_young",
    "sustainable_mtbf_ratio",
]
