"""A simulated CUDA-like GPU: allocations, streams and asynchronous copies.

The extended FTI (Section IV) needs three things from the GPU:

* distinguishing device, UVM and host allocations,
* synchronous whole-buffer copies (the *initial* implementation's path,
  which effectively fetches UVM data through page faults and stages device
  data through a small bounce buffer -- an order of magnitude slower than
  the peak interconnect bandwidth),
* streams with asynchronous chunked copies, so the optimised path can
  overlap device-to-host movement with the NVMe file write.

The :class:`TransferModel` carries the calibrated bandwidths.  The default
values reproduce the *ratios* the paper reports for Fig. 6 (about 12x faster
checkpoints and about 5x faster recovery for the async path); see
``EXPERIMENTS.md`` for the calibration rationale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.memory import MemoryKind, ProtectedBuffer

#: default chunk size for asynchronous copies (bytes): 64 MiB, large enough
#: to reach peak PCIe bandwidth, small enough to pipeline against the NVMe.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class TransferModel:
    """Calibrated bandwidths of the GPU <-> host <-> NVMe data paths.

    Attributes:
        pcie_gbps: streamed (asynchronous, pinned, chunked) device-to-host
            bandwidth per process, GB/s.
        sync_fetch_gbps: effective bandwidth of the initial implementation's
            synchronous fetch (UVM page-faulting / unpinned staging), GB/s.
        chunk_bytes: chunk size used by the asynchronous engine.
        chunk_latency_s: per-chunk launch/synchronisation overhead.
    """

    pcie_gbps: float = 10.0
    sync_fetch_gbps: float = 1.2
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    chunk_latency_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.pcie_gbps <= 0 or self.sync_fetch_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if self.chunk_latency_s < 0:
            raise ValueError("chunk latency must be non-negative")

    def sync_copy_time_s(self, nbytes: float) -> float:
        """Blocking whole-buffer fetch time (initial implementation)."""
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        return nbytes / (self.sync_fetch_gbps * 1e9)

    def async_copy_time_s(self, nbytes: float) -> float:
        """Streamed chunked copy time (optimised implementation)."""
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        chunks = max(1, int(np.ceil(nbytes / self.chunk_bytes)))
        return nbytes / (self.pcie_gbps * 1e9) + chunks * self.chunk_latency_s

    def num_chunks(self, nbytes: float) -> int:
        return max(1, int(np.ceil(nbytes / self.chunk_bytes)))


@dataclass
class _CopyEvent:
    """One completed (simulated) copy, for introspection and tests."""

    stream: int
    nbytes: float
    duration_s: float
    asynchronous: bool
    direction: str  # "d2h" or "h2d"


class CudaStream:
    """A stream: an ordered queue of asynchronous copies with its own clock."""

    _ids = itertools.count()

    def __init__(self, gpu: "SimulatedGpu") -> None:
        self.stream_id = next(self._ids)
        self.gpu = gpu
        self.busy_until_s = 0.0
        self.events: List[_CopyEvent] = []

    def memcpy_async(
        self, nbytes: float, start_s: float, direction: str = "d2h"
    ) -> Tuple[float, float]:
        """Enqueue an async chunked copy; returns (start, finish) times."""
        begin = max(start_s, self.busy_until_s)
        duration = self.gpu.transfer.async_copy_time_s(nbytes)
        finish = begin + duration
        self.busy_until_s = finish
        event = _CopyEvent(
            stream=self.stream_id,
            nbytes=nbytes,
            duration_s=duration,
            asynchronous=True,
            direction=direction,
        )
        self.events.append(event)
        self.gpu._log_event(event)
        return begin, finish

    def synchronize(self, now_s: float) -> float:
        """Block until all enqueued copies finished; returns the new time."""
        return max(now_s, self.busy_until_s)


class SimulatedGpu:
    """One GPU device: allocation registry plus the transfer-cost model."""

    def __init__(
        self,
        device_id: int = 0,
        memory_gib: float = 16.0,
        transfer: Optional[TransferModel] = None,
    ) -> None:
        if memory_gib <= 0:
            raise ValueError("GPU memory must be positive")
        self.device_id = device_id
        self.memory_bytes = int(memory_gib * 1024**3)
        self.transfer = transfer if transfer is not None else TransferModel()
        self._allocations: Dict[int, Tuple[MemoryKind, int]] = {}
        self._next_handle = itertools.count(1)
        self._events: List[_CopyEvent] = []

    # ------------------------------------------------------------------ #
    # Allocation API (mirrors cudaMalloc / cudaMallocManaged)
    # ------------------------------------------------------------------ #
    def malloc(self, nbytes: int) -> int:
        """``cudaMalloc``: device-resident allocation; returns a handle."""
        return self._allocate(nbytes, MemoryKind.DEVICE)

    def malloc_managed(self, nbytes: int) -> int:
        """``cudaMallocManaged``: UVM allocation; returns a handle."""
        return self._allocate(nbytes, MemoryKind.UVM)

    def _allocate(self, nbytes: int, kind: MemoryKind) -> int:
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        used = self.allocated_bytes(device_only=True)
        if kind is MemoryKind.DEVICE and used + nbytes > self.memory_bytes:
            raise MemoryError(
                f"GPU {self.device_id}: out of device memory "
                f"({used + nbytes} > {self.memory_bytes} bytes)"
            )
        handle = next(self._next_handle)
        self._allocations[handle] = (kind, nbytes)
        return handle

    def free(self, handle: int) -> None:
        if handle not in self._allocations:
            raise KeyError(f"unknown allocation handle {handle}")
        del self._allocations[handle]

    def kind_of(self, handle: int) -> MemoryKind:
        """The location class of an allocation (what FTI_Protect inspects)."""
        if handle not in self._allocations:
            raise KeyError(f"unknown allocation handle {handle}")
        return self._allocations[handle][0]

    def allocated_bytes(self, device_only: bool = False) -> int:
        return sum(
            nbytes
            for kind, nbytes in self._allocations.values()
            if not device_only or kind is MemoryKind.DEVICE
        )

    # ------------------------------------------------------------------ #
    # Copies
    # ------------------------------------------------------------------ #
    def memcpy_sync(self, nbytes: float, direction: str = "d2h") -> float:
        """Blocking whole-buffer copy; returns its duration in seconds."""
        duration = self.transfer.sync_copy_time_s(nbytes)
        event = _CopyEvent(
            stream=-1, nbytes=nbytes, duration_s=duration, asynchronous=False, direction=direction
        )
        self._log_event(event)
        return duration

    def create_stream(self) -> CudaStream:
        return CudaStream(self)

    def _log_event(self, event: _CopyEvent) -> None:
        self._events.append(event)

    @property
    def copy_events(self) -> List[_CopyEvent]:
        return list(self._events)

    def bytes_copied(self, asynchronous: Optional[bool] = None) -> float:
        return sum(
            event.nbytes
            for event in self._events
            if asynchronous is None or event.asynchronous == asynchronous
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedGpu(id={self.device_id}, allocations={len(self._allocations)}, "
            f"mem={self.memory_bytes / 1024**3:.0f} GiB)"
        )
