"""Multilevel stable storage for checkpoints.

FTI (Bautista-Gomez et al., SC'11) is a *multilevel* checkpoint library:

* **L1** -- local storage on the node (the evaluation of Section IV writes to
  the node-local NVMe, which is why checkpoint cost stays flat under weak
  scaling),
* **L2** -- partner copy: the L1 file is replicated to a partner node so a
  single-node loss is survivable,
* **L3** -- Reed-Solomon erasure coding across a group of nodes,
* **L4** -- flush to the parallel file system (PFS), which survives full
  system loss but shares bandwidth across all nodes.

Each level is a storage model with a write/read cost plus a *failure scope*
it can recover from.  The content itself is kept in memory (keyed by rank
and checkpoint id) so recovery round-trips real data in tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np


class CheckpointLevel(enum.IntEnum):
    """FTI's four reliability levels."""

    L1_LOCAL = 1
    L2_PARTNER = 2
    L3_RS_ENCODED = 3
    L4_PFS = 4


class FailureScope(str, enum.Enum):
    """What failed, which determines the cheapest level that can recover."""

    PROCESS = "process"          # soft error / process crash, node storage intact
    SINGLE_NODE = "single_node"  # one node (and its local NVMe) lost
    MULTI_NODE = "multi_node"    # several nodes of the same group lost
    FULL_SYSTEM = "full_system"  # whole machine lost; only the PFS survives


#: the cheapest checkpoint level able to recover from each failure scope.
RECOVERY_LEVEL: Mapping[FailureScope, CheckpointLevel] = {
    FailureScope.PROCESS: CheckpointLevel.L1_LOCAL,
    FailureScope.SINGLE_NODE: CheckpointLevel.L2_PARTNER,
    FailureScope.MULTI_NODE: CheckpointLevel.L3_RS_ENCODED,
    FailureScope.FULL_SYSTEM: CheckpointLevel.L4_PFS,
}


@dataclass
class StoredCheckpoint:
    """One checkpoint file held by a storage level."""

    rank: int
    checkpoint_id: int
    nbytes: float
    payload: Dict[int, np.ndarray] = field(default_factory=dict)
    digest: str = ""


class _StorageLevel:
    """Common bookkeeping for all storage levels."""

    level: CheckpointLevel = CheckpointLevel.L1_LOCAL

    def __init__(self, name: str) -> None:
        self.name = name
        self._store: Dict[Tuple[int, int], StoredCheckpoint] = {}
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    # -- content ------------------------------------------------------- #
    def put(self, record: StoredCheckpoint) -> None:
        self._store[(record.rank, record.checkpoint_id)] = record
        self.bytes_written += record.nbytes

    def get(self, rank: int, checkpoint_id: int) -> StoredCheckpoint:
        key = (rank, checkpoint_id)
        if key not in self._store:
            raise KeyError(f"{self.name}: no checkpoint {checkpoint_id} for rank {rank}")
        record = self._store[key]
        self.bytes_read += record.nbytes
        return record

    def has(self, rank: int, checkpoint_id: int) -> bool:
        return (rank, checkpoint_id) in self._store

    def drop_rank(self, rank: int) -> int:
        """Simulate losing a rank's local data; returns how many files were lost."""
        keys = [key for key in self._store if key[0] == rank]
        for key in keys:
            del self._store[key]
        return len(keys)

    def latest_id(self, rank: int) -> Optional[int]:
        ids = [cid for (r, cid) in self._store if r == rank]
        return max(ids) if ids else None

    # -- costs (overridden) --------------------------------------------- #
    def write_time_s(self, nbytes: float, sharers: int = 1) -> float:
        raise NotImplementedError

    def read_time_s(self, nbytes: float, sharers: int = 1) -> float:
        raise NotImplementedError


class LocalNvme(_StorageLevel):
    """L1: node-local NVMe shared by the ranks of that node.

    Default bandwidths model a datacentre NVMe drive (8 GB/s write,
    20 GB/s effective read with page-cache help); ``sharers`` is the number
    of ranks concurrently using the drive (4 per node in the Fig. 6 setup).
    """

    level = CheckpointLevel.L1_LOCAL

    def __init__(self, name: str, write_gbps: float = 8.0, read_gbps: float = 20.0) -> None:
        super().__init__(name)
        if write_gbps <= 0 or read_gbps <= 0:
            raise ValueError("NVMe bandwidths must be positive")
        self.write_gbps = write_gbps
        self.read_gbps = read_gbps

    def write_time_s(self, nbytes: float, sharers: int = 1) -> float:
        return nbytes * max(1, sharers) / (self.write_gbps * 1e9)

    def read_time_s(self, nbytes: float, sharers: int = 1) -> float:
        return nbytes * max(1, sharers) / (self.read_gbps * 1e9)


class PartnerCopy(_StorageLevel):
    """L2: replicate the L1 file to a partner node over the compute network."""

    level = CheckpointLevel.L2_PARTNER

    def __init__(self, name: str, network_gbps: float = 5.0) -> None:
        super().__init__(name)
        if network_gbps <= 0:
            raise ValueError("network bandwidth must be positive")
        self.network_gbps = network_gbps

    def write_time_s(self, nbytes: float, sharers: int = 1) -> float:
        # The copy crosses the network once and is written once remotely;
        # the remote write overlaps the transfer, so the network dominates.
        return nbytes / (self.network_gbps * 1e9)

    def read_time_s(self, nbytes: float, sharers: int = 1) -> float:
        return nbytes / (self.network_gbps * 1e9)


class ReedSolomonEncoded(_StorageLevel):
    """L3: Reed-Solomon encode checkpoints across a group of nodes."""

    level = CheckpointLevel.L3_RS_ENCODED

    def __init__(
        self,
        name: str,
        group_size: int = 4,
        parity: int = 2,
        encode_gbps: float = 3.0,
        network_gbps: float = 5.0,
    ) -> None:
        super().__init__(name)
        if group_size <= parity:
            raise ValueError("group size must exceed parity count")
        if encode_gbps <= 0 or network_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        self.group_size = group_size
        self.parity = parity
        self.encode_gbps = encode_gbps
        self.network_gbps = network_gbps

    @property
    def storage_overhead(self) -> float:
        """Extra bytes stored per checkpoint byte (parity / data ratio)."""
        return self.parity / (self.group_size - self.parity)

    def write_time_s(self, nbytes: float, sharers: int = 1) -> float:
        encode = nbytes / (self.encode_gbps * 1e9)
        exchange = nbytes * self.storage_overhead / (self.network_gbps * 1e9)
        return encode + exchange

    def read_time_s(self, nbytes: float, sharers: int = 1) -> float:
        # Decoding after a loss must re-fetch surviving chunks and decode.
        fetch = nbytes / (self.network_gbps * 1e9)
        decode = nbytes / (self.encode_gbps * 1e9)
        return fetch + decode


class ParallelFileSystem(_StorageLevel):
    """L4: the shared PFS; aggregate bandwidth divided across all writers."""

    level = CheckpointLevel.L4_PFS

    def __init__(self, name: str, aggregate_write_gbps: float = 40.0, aggregate_read_gbps: float = 60.0) -> None:
        super().__init__(name)
        if aggregate_write_gbps <= 0 or aggregate_read_gbps <= 0:
            raise ValueError("PFS bandwidths must be positive")
        self.aggregate_write_gbps = aggregate_write_gbps
        self.aggregate_read_gbps = aggregate_read_gbps

    def write_time_s(self, nbytes: float, sharers: int = 1) -> float:
        return nbytes * max(1, sharers) / (self.aggregate_write_gbps * 1e9)

    def read_time_s(self, nbytes: float, sharers: int = 1) -> float:
        return nbytes * max(1, sharers) / (self.aggregate_read_gbps * 1e9)


class StorageHierarchy:
    """The four levels wired together, as FTI configures them per run."""

    def __init__(
        self,
        nvme: Optional[LocalNvme] = None,
        partner: Optional[PartnerCopy] = None,
        encoded: Optional[ReedSolomonEncoded] = None,
        pfs: Optional[ParallelFileSystem] = None,
    ) -> None:
        self.levels: Dict[CheckpointLevel, _StorageLevel] = {
            CheckpointLevel.L1_LOCAL: nvme or LocalNvme("nvme"),
            CheckpointLevel.L2_PARTNER: partner or PartnerCopy("partner"),
            CheckpointLevel.L3_RS_ENCODED: encoded or ReedSolomonEncoded("rs"),
            CheckpointLevel.L4_PFS: pfs or ParallelFileSystem("pfs"),
        }

    def level(self, level: CheckpointLevel) -> _StorageLevel:
        return self.levels[level]

    def recovery_level_for(self, scope: FailureScope) -> _StorageLevel:
        return self.levels[RECOVERY_LEVEL[scope]]

    def store(self, level: CheckpointLevel, record: StoredCheckpoint) -> None:
        self.levels[level].put(record)

    def can_recover(self, rank: int, checkpoint_id: int, scope: FailureScope) -> bool:
        """Whether the cheapest sufficient level still holds the checkpoint.

        A ``SINGLE_NODE`` failure destroys the rank's L1 copy, so recovery
        requires L2 or higher; the caller models that by dropping the rank's
        L1 data before asking.
        """
        needed = RECOVERY_LEVEL[scope]
        for level_id in sorted(self.levels):
            if level_id < needed:
                continue
            if self.levels[level_id].has(rank, checkpoint_id):
                return True
        return False
