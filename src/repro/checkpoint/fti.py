"""The FTI-style checkpoint API with transparent GPU/CPU support (Section IV).

The interface mirrors Listing 1 of the paper:

* :meth:`FtiContext.init`       -- ``FTI_Init`` (splits off FTI_COMM_WORLD),
* :meth:`FtiContext.protect`    -- ``FTI_Protect`` for host, device and UVM
  regions with no API difference between them,
* :meth:`FtiContext.snapshot`   -- ``FTI_Snapshot`` (checkpoints when the
  configured interval elapsed, recovers after a failure),
* :meth:`FtiContext.checkpoint` -- explicit ``FTI_Checkpoint``,
* :meth:`FtiContext.recover`    -- ``FTI_Recover``,
* :meth:`FtiContext.finalize`   -- ``FTI_Finalize``.

Two checkpoint data paths are modelled, matching Fig. 6:

* ``CheckpointStrategy.INITIAL`` -- the first implementation: device and UVM
  data are fetched with blocking copies at the low effective bandwidth of
  UVM page-faulting / unpinned staging, and the NVMe write only starts once
  the fetch finished.  The application is blocked for the whole duration.
* ``CheckpointStrategy.ASYNC`` -- the optimised implementation: data is
  moved with chunked asynchronous stream copies and the NVMe write is
  overlapped with both the copy and the application's continued execution,
  so the application-visible overhead is only the device-to-host drain.
  Recovery overlaps the NVMe read with the host-to-device copy (it cannot be
  hidden behind computation because the data is needed before computing).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.checkpoint.gpu import SimulatedGpu, TransferModel
from repro.checkpoint.memory import FtiDataType, MemoryKind, ProtectedBuffer
from repro.checkpoint.mpi import MpiCommunicator, MpiWorld
from repro.checkpoint.storage import (
    CheckpointLevel,
    FailureScope,
    LocalNvme,
    StorageHierarchy,
    StoredCheckpoint,
)


class CheckpointStrategy(str, enum.Enum):
    """The two data paths compared in Fig. 6."""

    INITIAL = "initial"
    ASYNC = "async"


@dataclass(frozen=True)
class FtiConfig:
    """Run-wide FTI configuration (the ``argv[1]`` config file in Listing 1)."""

    strategy: CheckpointStrategy = CheckpointStrategy.ASYNC
    level: CheckpointLevel = CheckpointLevel.L1_LOCAL
    snapshot_interval_iters: int = 10
    transfer: TransferModel = field(default_factory=TransferModel)
    nvme_write_gbps: float = 8.0
    nvme_read_gbps: float = 20.0

    def __post_init__(self) -> None:
        if self.snapshot_interval_iters <= 0:
            raise ValueError("snapshot interval must be at least one iteration")


@dataclass
class CheckpointRecord:
    """Accounting for one completed checkpoint of one rank."""

    rank: int
    checkpoint_id: int
    level: CheckpointLevel
    strategy: CheckpointStrategy
    nbytes: float
    blocking_overhead_s: float
    total_completion_s: float
    device_bytes: float
    uvm_bytes: float
    host_bytes: float


@dataclass
class RecoveryRecord:
    """Accounting for one completed recovery of one rank."""

    rank: int
    checkpoint_id: int
    strategy: CheckpointStrategy
    nbytes: float
    recovery_time_s: float


@dataclass
class _RankState:
    """Per-rank FTI bookkeeping."""

    rank: int
    gpu: SimulatedGpu
    buffers: Dict[int, ProtectedBuffer] = field(default_factory=dict)
    iteration: int = 0
    pending_write_finish_s: float = 0.0
    needs_recovery: bool = False
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)


class FtiContext:
    """The extended FTI library for one simulated MPI application run."""

    def __init__(
        self,
        world: MpiWorld,
        config: Optional[FtiConfig] = None,
        storage: Optional[StorageHierarchy] = None,
    ) -> None:
        self.world = world
        self.config = config if config is not None else FtiConfig()
        nvme = LocalNvme(
            "nvme",
            write_gbps=self.config.nvme_write_gbps,
            read_gbps=self.config.nvme_read_gbps,
        )
        self.storage = storage if storage is not None else StorageHierarchy(nvme=nvme)
        self.fti_comm: Optional[MpiCommunicator] = None
        self._ranks: Dict[int, _RankState] = {}
        self._checkpoint_ids = itertools.count(1)
        self._initialised = False
        self._finalised = False

    # ------------------------------------------------------------------ #
    # Lifecycle (FTI_Init / FTI_Finalize)
    # ------------------------------------------------------------------ #
    def init(self) -> MpiCommunicator:
        """``FTI_Init``: build FTI_COMM_WORLD and per-rank state."""
        if self._initialised:
            raise RuntimeError("FTI already initialised")
        self.fti_comm = self.world.split(range(self.world.num_ranks), name="FTI_COMM_WORLD")
        for rank in range(self.world.num_ranks):
            self._ranks[rank] = _RankState(
                rank=rank, gpu=SimulatedGpu(device_id=rank, transfer=self.config.transfer)
            )
        self._initialised = True
        return self.fti_comm

    def finalize(self) -> None:
        """``FTI_Finalize``: wait for outstanding background writes."""
        self._require_init()
        for state in self._ranks.values():
            clock = self.world.clock(state.rank)
            if state.pending_write_finish_s > clock.time_s:
                clock.advance(state.pending_write_finish_s - clock.time_s, category="io")
        self._finalised = True

    @property
    def finalised(self) -> bool:
        return self._finalised

    def _require_init(self) -> None:
        if not self._initialised:
            raise RuntimeError("call FtiContext.init() first (FTI_Init)")

    def _state(self, rank: int) -> _RankState:
        self._require_init()
        if rank not in self._ranks:
            raise KeyError(f"rank {rank} unknown to FTI")
        return self._ranks[rank]

    # ------------------------------------------------------------------ #
    # FTI_Protect
    # ------------------------------------------------------------------ #
    def protect(self, rank: int, buffer: ProtectedBuffer) -> None:
        """``FTI_Protect``: register a region regardless of where it lives."""
        state = self._state(rank)
        if buffer.protect_id in state.buffers:
            # Re-protecting the same id updates the registration (FTI allows
            # this to resize regions between checkpoints).
            state.buffers[buffer.protect_id] = buffer
            return
        state.buffers[buffer.protect_id] = buffer

    def protect_array(
        self, rank: int, protect_id: int, array: np.ndarray, kind: MemoryKind = MemoryKind.HOST
    ) -> ProtectedBuffer:
        """Convenience wrapper protecting a materialised NumPy array."""
        buffer = ProtectedBuffer.from_array(protect_id, array, kind)
        self.protect(rank, buffer)
        return buffer

    def protected_bytes(self, rank: int) -> Dict[MemoryKind, float]:
        """Protected byte totals per memory kind for one rank."""
        state = self._state(rank)
        totals = {kind: 0.0 for kind in MemoryKind}
        for buffer in state.buffers.values():
            totals[buffer.kind] += buffer.nbytes
        return totals

    # ------------------------------------------------------------------ #
    # FTI_Snapshot / FTI_Checkpoint
    # ------------------------------------------------------------------ #
    def snapshot(self, rank: int) -> bool:
        """``FTI_Snapshot``: recover if needed, else checkpoint on interval.

        Returns True when a checkpoint (or recovery) was actually performed
        during this call.
        """
        state = self._state(rank)
        if state.needs_recovery:
            self.recover(rank)
            return True
        state.iteration += 1
        if state.iteration % self.config.snapshot_interval_iters == 0:
            self.checkpoint(rank)
            return True
        return False

    def checkpoint(self, rank: int, checkpoint_id: Optional[int] = None) -> CheckpointRecord:
        """``FTI_Checkpoint``: write all protected regions to stable storage."""
        state = self._state(rank)
        clock = self.world.clock(rank)
        if checkpoint_id is None:
            checkpoint_id = next(self._checkpoint_ids)

        totals = self.protected_bytes(rank)
        device_bytes = totals[MemoryKind.DEVICE]
        uvm_bytes = totals[MemoryKind.UVM]
        host_bytes = totals[MemoryKind.HOST]
        gpu_resident = device_bytes + uvm_bytes
        total_bytes = gpu_resident + host_bytes

        level_store = self.storage.level(self.config.level)
        sharers = min(self.world.ranks_per_node, self.world.num_ranks)
        write_s = level_store.write_time_s(total_bytes, sharers=sharers)

        # If a previous background write is still in flight, the new
        # checkpoint has to wait for the drive (async path only).
        wait_s = max(0.0, state.pending_write_finish_s - clock.time_s)

        if self.config.strategy is CheckpointStrategy.INITIAL:
            fetch_s = state.gpu.memcpy_sync(gpu_resident, direction="d2h") if gpu_resident else 0.0
            blocking = fetch_s + write_s
            completion = blocking
            state.pending_write_finish_s = clock.time_s + completion
        else:
            stream = state.gpu.create_stream()
            if gpu_resident:
                _, copy_finish = stream.memcpy_async(gpu_resident, start_s=clock.time_s)
                copy_s = copy_finish - clock.time_s
            else:
                copy_s = 0.0
            # Application only blocks for the drain of GPU-resident data
            # (plus any wait on the previous write); the NVMe write proceeds
            # in the background, overlapped with the copy and the
            # application's continued execution.
            blocking = wait_s + copy_s
            completion = wait_s + max(copy_s, write_s)
            state.pending_write_finish_s = clock.time_s + completion

        clock.advance(blocking, category="io")

        payload = {pid: buf.snapshot_content() for pid, buf in state.buffers.items()}
        record_store = StoredCheckpoint(
            rank=rank, checkpoint_id=checkpoint_id, nbytes=total_bytes, payload=payload
        )
        self.storage.store(self.config.level, record_store)

        record = CheckpointRecord(
            rank=rank,
            checkpoint_id=checkpoint_id,
            level=self.config.level,
            strategy=self.config.strategy,
            nbytes=total_bytes,
            blocking_overhead_s=blocking,
            total_completion_s=completion,
            device_bytes=device_bytes,
            uvm_bytes=uvm_bytes,
            host_bytes=host_bytes,
        )
        state.checkpoints.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Failure injection and FTI_Recover
    # ------------------------------------------------------------------ #
    def mark_failed(self, rank: int) -> None:
        """Flag a rank so its next ``snapshot`` call performs recovery."""
        self._state(rank).needs_recovery = True

    def recover(
        self, rank: int, scope: FailureScope = FailureScope.PROCESS
    ) -> RecoveryRecord:
        """``FTI_Recover``: restore all protected regions from the newest checkpoint."""
        state = self._state(rank)
        clock = self.world.clock(rank)
        level_store = self.storage.recovery_level_for(scope)
        latest = level_store.latest_id(rank)
        if latest is None:
            raise RuntimeError(
                f"rank {rank}: no checkpoint available at level {level_store.level.name} "
                f"for failure scope {scope.value}"
            )
        stored = level_store.get(rank, latest)

        totals = self.protected_bytes(rank)
        gpu_resident = totals[MemoryKind.DEVICE] + totals[MemoryKind.UVM]
        total_bytes = stored.nbytes
        sharers = min(self.world.ranks_per_node, self.world.num_ranks)
        read_s = level_store.read_time_s(total_bytes, sharers=sharers)

        if self.config.strategy is CheckpointStrategy.INITIAL:
            copy_back_s = (
                state.gpu.memcpy_sync(gpu_resident, direction="h2d") if gpu_resident else 0.0
            )
            recovery_s = read_s + copy_back_s
        else:
            copy_back_s = (
                self.config.transfer.async_copy_time_s(gpu_resident) if gpu_resident else 0.0
            )
            recovery_s = max(read_s, copy_back_s)

        clock.advance(recovery_s, category="io")

        for protect_id, content in stored.payload.items():
            if protect_id in state.buffers:
                state.buffers[protect_id].restore_content(content)
        state.needs_recovery = False

        record = RecoveryRecord(
            rank=rank,
            checkpoint_id=latest,
            strategy=self.config.strategy,
            nbytes=total_bytes,
            recovery_time_s=recovery_s,
        )
        state.recoveries.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def checkpoint_records(self, rank: Optional[int] = None) -> List[CheckpointRecord]:
        self._require_init()
        if rank is not None:
            return list(self._state(rank).checkpoints)
        return [record for state in self._ranks.values() for record in state.checkpoints]

    def recovery_records(self, rank: Optional[int] = None) -> List[RecoveryRecord]:
        self._require_init()
        if rank is not None:
            return list(self._state(rank).recoveries)
        return [record for state in self._ranks.values() for record in state.recoveries]

    def max_checkpoint_overhead_s(self) -> float:
        """Slowest per-rank blocking checkpoint overhead (what Fig. 6 plots)."""
        records = self.checkpoint_records()
        return max((r.blocking_overhead_s for r in records), default=0.0)

    def max_recovery_time_s(self) -> float:
        records = self.recovery_records()
        return max((r.recovery_time_s for r in records), default=0.0)

    def gpu_of(self, rank: int) -> SimulatedGpu:
        return self._state(rank).gpu
