"""Heat2D: the application used to evaluate the GPU/CPU checkpointing.

Section IV checkpoints Heat2D -- a 2D heat-diffusion Jacobi stencil -- under
weak scaling with four MPI ranks per node (one per GPU) and two per-rank
problem sizes (16 GB and 32 GB of checkpointed data).  Two usage modes are
provided:

* **materialised mode** (small grids): the stencil actually runs on NumPy
  arrays, halos are exchanged through the simulated MPI world, and the
  protected buffers hold the real grid so checkpoint/recovery correctness is
  testable end to end;
* **synthetic mode** (Fig. 6 problem sizes): the per-rank state is a
  synthetic UVM region of the configured logical size, the stencil update is
  charged to the rank clock from a calibrated compute-rate model, and the
  checkpoint experiment reports the timing behaviour at 1/4/8/16 nodes
  without materialising terabytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.fti import CheckpointStrategy, FtiConfig, FtiContext
from repro.checkpoint.memory import FtiDataType, MemoryKind, ProtectedBuffer
from repro.checkpoint.mpi import MpiWorld
from repro.checkpoint.storage import FailureScope

#: sustained stencil update rate used to charge compute time in synthetic
#: mode (grid cells per second per rank on a GPU); only affects the compute
#: portion of the timeline, not the checkpoint overheads Fig. 6 reports.
SYNTHETIC_CELL_RATE_PER_S = 2.0e9


@dataclass(frozen=True)
class Heat2dConfig:
    """Configuration of one Heat2D run."""

    ranks: int = 4
    ranks_per_node: int = 4
    rows_per_rank: int = 64
    cols: int = 64
    iterations: int = 40
    snapshot_interval_iters: int = 10
    alpha: float = 0.1
    strategy: CheckpointStrategy = CheckpointStrategy.ASYNC
    use_uvm: bool = True
    synthetic_bytes_per_rank: Optional[int] = None  # set for Fig. 6 sizes

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError("need at least one rank")
        if self.rows_per_rank < 2 or self.cols < 3:
            raise ValueError("grid too small for a 5-point stencil")
        if self.iterations <= 0:
            raise ValueError("need at least one iteration")
        if not (0.0 < self.alpha <= 0.25):
            raise ValueError("alpha must be in (0, 0.25] for stability")


@dataclass
class Heat2dResult:
    """Outcome of a Heat2D run."""

    config: Heat2dConfig
    iterations_run: int
    checkpoints_taken: int
    recoveries_performed: int
    max_checkpoint_overhead_s: float
    max_recovery_time_s: float
    final_residual: float
    elapsed_s: float


class Heat2dSimulation:
    """A Heat2D run wired to the FTI context (Listing 1 structure)."""

    def __init__(self, config: Heat2dConfig, fti_config: Optional[FtiConfig] = None) -> None:
        self.config = config
        self.world = MpiWorld(num_ranks=config.ranks, ranks_per_node=config.ranks_per_node)
        fti_config = fti_config or FtiConfig(
            strategy=config.strategy, snapshot_interval_iters=config.snapshot_interval_iters
        )
        if fti_config.strategy is not config.strategy:
            fti_config = FtiConfig(
                strategy=config.strategy,
                level=fti_config.level,
                snapshot_interval_iters=config.snapshot_interval_iters,
                transfer=fti_config.transfer,
                nvme_write_gbps=fti_config.nvme_write_gbps,
                nvme_read_gbps=fti_config.nvme_read_gbps,
            )
        self.fti = FtiContext(self.world, config=fti_config)
        self.fti.init()
        self._grids: Dict[int, np.ndarray] = {}
        self._iteration_counters: Dict[int, np.ndarray] = {}
        self._setup_ranks()

    # ------------------------------------------------------------------ #
    # Setup (MPI_Init / FTI_Init / cudaMalloc / FTI_Protect of Listing 1)
    # ------------------------------------------------------------------ #
    def _setup_ranks(self) -> None:
        kind = MemoryKind.UVM if self.config.use_uvm else MemoryKind.DEVICE
        for rank in range(self.config.ranks):
            counter = np.zeros(1, dtype=np.int32)
            self._iteration_counters[rank] = counter
            self.fti.protect(
                rank,
                ProtectedBuffer.from_array(0, counter, MemoryKind.HOST, FtiDataType.FTI_INTG),
            )
            if self.config.synthetic_bytes_per_rank is not None:
                buffer = ProtectedBuffer.synthetic_region(
                    protect_id=1,
                    kind=kind,
                    nbytes=self.config.synthetic_bytes_per_rank,
                    seed=rank,
                )
                self.fti.protect(rank, buffer)
            else:
                grid = self._initial_grid(rank)
                self._grids[rank] = grid
                self.fti.protect(
                    rank,
                    ProtectedBuffer.from_array(1, grid, kind, FtiDataType.FTI_DBLE),
                )

    def _initial_grid(self, rank: int) -> np.ndarray:
        """Per-rank slab with a hot left boundary (classic Heat2D setup)."""
        grid = np.zeros((self.config.rows_per_rank, self.config.cols), dtype=np.float64)
        grid[:, 0] = 100.0
        if rank == 0:
            grid[0, :] = 100.0
        if rank == self.config.ranks - 1:
            grid[-1, :] = 100.0
        return grid

    # ------------------------------------------------------------------ #
    # Stencil step
    # ------------------------------------------------------------------ #
    def _halo_exchange(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (upper, lower) halo rows from the neighbouring ranks."""
        cols = self.config.cols
        grid = self._grids[rank]
        upper = self._grids[rank - 1][-1, :] if rank > 0 else grid[0, :]
        lower = self._grids[rank + 1][0, :] if rank < self.config.ranks - 1 else grid[-1, :]
        halo_bytes = cols * 8
        if rank > 0:
            self.world.comm_world.exchange(rank, rank - 1, halo_bytes)
        if rank < self.config.ranks - 1:
            self.world.comm_world.exchange(rank, rank + 1, halo_bytes)
        return upper, lower

    def _step_rank(self, rank: int) -> float:
        """One Jacobi update on a rank's slab; returns the local residual."""
        grid = self._grids[rank]
        upper, lower = self._halo_exchange(rank)
        padded = np.vstack([upper, grid, lower])
        updated = grid + self.config.alpha * (
            padded[:-2, :] + padded[2:, :] + np.roll(grid, 1, axis=1) + np.roll(grid, -1, axis=1)
            - 4.0 * grid
        )
        # Re-impose the boundary conditions.
        updated[:, 0] = grid[:, 0]
        updated[:, -1] = grid[:, -1]
        if rank == 0:
            updated[0, :] = grid[0, :]
        if rank == self.config.ranks - 1:
            updated[-1, :] = grid[-1, :]
        residual = float(np.max(np.abs(updated - grid)))
        grid[...] = updated
        cells = grid.size
        self.world.clock(rank).advance(cells / SYNTHETIC_CELL_RATE_PER_S, category="compute")
        return residual

    def _step_synthetic(self, rank: int) -> float:
        """Charge the compute time of one iteration in synthetic mode."""
        assert self.config.synthetic_bytes_per_rank is not None
        cells = self.config.synthetic_bytes_per_rank / 8
        self.world.clock(rank).advance(cells / SYNTHETIC_CELL_RATE_PER_S, category="compute")
        return 0.0

    # ------------------------------------------------------------------ #
    # Main loop (the for-loop of Listing 1)
    # ------------------------------------------------------------------ #
    def run(self, inject_failure_at: Optional[int] = None) -> Heat2dResult:
        """Run the configured iterations, optionally injecting a failure.

        ``inject_failure_at`` is an iteration index (1-based); at that
        iteration every rank is marked failed so the next ``FTI_Snapshot``
        performs a recovery, exactly as a restarted MPI job would.
        """
        residual = float("inf")
        for iteration in range(1, self.config.iterations + 1):
            if inject_failure_at is not None and iteration == inject_failure_at:
                for rank in range(self.config.ranks):
                    self.fti.mark_failed(rank)
            residuals = []
            for rank in range(self.config.ranks):
                self.fti.snapshot(rank)
                self._iteration_counters[rank][0] = iteration
                if self.config.synthetic_bytes_per_rank is not None:
                    residuals.append(self._step_synthetic(rank))
                else:
                    residuals.append(self._step_rank(rank))
            residual = max(residuals)
        self.fti.finalize()
        checkpoints = self.fti.checkpoint_records()
        recoveries = self.fti.recovery_records()
        return Heat2dResult(
            config=self.config,
            iterations_run=self.config.iterations,
            checkpoints_taken=len(checkpoints),
            recoveries_performed=len(recoveries),
            max_checkpoint_overhead_s=self.fti.max_checkpoint_overhead_s(),
            max_recovery_time_s=self.fti.max_recovery_time_s(),
            final_residual=residual,
            elapsed_s=self.world.max_time_s(),
        )

    def grid(self, rank: int) -> np.ndarray:
        if self.config.synthetic_bytes_per_rank is not None:
            raise RuntimeError("synthetic runs do not materialise grids")
        return self._grids[rank]


# ---------------------------------------------------------------------- #
# Fig. 6 experiment driver
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig6Point:
    """One bar of Fig. 6: a (nodes, size, strategy) configuration."""

    nodes: int
    gib_per_rank: float
    strategy: CheckpointStrategy
    checkpoint_time_s: float
    recover_time_s: float
    total_checkpointed_tib: float


def run_fig6_point(
    nodes: int,
    gib_per_rank: float,
    strategy: CheckpointStrategy,
    ranks_per_node: int = 4,
) -> Fig6Point:
    """Measure checkpoint and recovery cost for one Fig. 6 configuration.

    The run takes a single checkpoint followed by a single recovery on every
    rank, which is exactly what the figure's ``Ckpt`` / ``Recover`` bars
    report, and uses synthetic UVM regions of the configured per-rank size.
    """
    if nodes <= 0 or gib_per_rank <= 0:
        raise ValueError("nodes and per-rank size must be positive")
    ranks = nodes * ranks_per_node
    bytes_per_rank = int(gib_per_rank * 1024**3)
    config = Heat2dConfig(
        ranks=ranks,
        ranks_per_node=ranks_per_node,
        iterations=2,
        snapshot_interval_iters=1,
        strategy=strategy,
        use_uvm=True,
        synthetic_bytes_per_rank=bytes_per_rank,
    )
    simulation = Heat2dSimulation(config)
    # Take one explicit checkpoint and one explicit recovery per rank so the
    # numbers are exactly one-checkpoint / one-recover, matching the figure.
    checkpoint_times = []
    recover_times = []
    for rank in range(ranks):
        record = simulation.fti.checkpoint(rank)
        checkpoint_times.append(record.blocking_overhead_s)
    for rank in range(ranks):
        recovery = simulation.fti.recover(rank, scope=FailureScope.PROCESS)
        recover_times.append(recovery.recovery_time_s)
    total_bytes = bytes_per_rank * ranks
    return Fig6Point(
        nodes=nodes,
        gib_per_rank=gib_per_rank,
        strategy=strategy,
        checkpoint_time_s=max(checkpoint_times),
        recover_time_s=max(recover_times),
        total_checkpointed_tib=total_bytes / 1024**4,
    )


def run_fig6_experiment(
    node_counts: Tuple[int, ...] = (1, 4, 8, 16),
    gib_per_rank_options: Tuple[float, ...] = (16.0, 32.0),
) -> List[Fig6Point]:
    """Regenerate every bar of Fig. 6 (both panels, both strategies)."""
    points: List[Fig6Point] = []
    for gib in gib_per_rank_options:
        for nodes in node_counts:
            for strategy in (CheckpointStrategy.INITIAL, CheckpointStrategy.ASYNC):
                points.append(run_fig6_point(nodes, gib, strategy))
    return points
