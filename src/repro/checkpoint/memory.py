"""Protected-buffer abstraction: the memory regions FTI checkpoints.

Listing 1 of the paper protects three kinds of addresses with the *same*
``FTI_Protect`` call:

* a plain host address (the loop counter ``i``),
* a UVM address (``cudaMallocManaged``),
* a device address (``cudaMalloc``).

The extended FTI identifies the physical location of each protected region
and picks the right data path at checkpoint time.  :class:`ProtectedBuffer`
is that region in the simulator: it knows where it lives
(:class:`MemoryKind`), how many bytes it spans, and -- so that correctness
can actually be tested -- it holds real NumPy data that round-trips through
checkpoint and recovery.

For the large Fig. 6 problem sizes (16-32 GB per rank) materialising the
data would be impossible, so a buffer can also be *synthetic*: it reports a
logical byte size for the timing model while holding only a small witness
array used to verify content integrity.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class MemoryKind(str, enum.Enum):
    """Physical location classes distinguished by the extended FTI_Protect."""

    HOST = "host"      # ordinary CPU memory
    DEVICE = "device"  # cudaMalloc'd GPU memory, not host-accessible
    UVM = "uvm"        # cudaMallocManaged unified virtual memory


class FtiDataType(str, enum.Enum):
    """The FTI primitive datatypes used in Listing 1."""

    FTI_INTG = "int32"
    FTI_LONG = "int64"
    FTI_SFLT = "float32"
    FTI_DBLE = "float64"

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.value)

    @property
    def itemsize(self) -> int:
        return self.numpy_dtype.itemsize


@dataclass
class ProtectedBuffer:
    """One protected memory region.

    Attributes:
        protect_id: the integer id passed to ``FTI_Protect``.
        kind: where the region physically lives.
        dtype: FTI datatype of the elements.
        count: logical element count (defines the checkpointed byte size).
        data: the actual content.  For *synthetic* buffers this is a small
            witness array standing in for the full region.
        synthetic: True when ``data`` is only a witness and ``count`` is the
            logical size used for timing.
    """

    protect_id: int
    kind: MemoryKind
    dtype: FtiDataType
    count: int
    data: np.ndarray
    synthetic: bool = False

    def __post_init__(self) -> None:
        if self.protect_id < 0:
            raise ValueError("protect id must be non-negative")
        if self.count <= 0:
            raise ValueError("protected region must have at least one element")
        self.data = np.ascontiguousarray(self.data, dtype=self.dtype.numpy_dtype)
        if not self.synthetic and self.data.size != self.count:
            raise ValueError(
                f"buffer {self.protect_id}: data has {self.data.size} elements "
                f"but count={self.count}; mark synthetic=True for witness buffers"
            )

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Logical checkpointed size in bytes (what the timing model uses)."""
        return self.count * self.dtype.itemsize

    @property
    def witness_nbytes(self) -> int:
        """Bytes actually materialised in the simulator."""
        return int(self.data.nbytes)

    # ------------------------------------------------------------------ #
    # Content handling
    # ------------------------------------------------------------------ #
    def snapshot_content(self) -> np.ndarray:
        """A copy of the current content, as stored in a checkpoint."""
        return self.data.copy()

    def restore_content(self, content: np.ndarray) -> None:
        """Overwrite the region with recovered content."""
        restored = np.ascontiguousarray(content, dtype=self.dtype.numpy_dtype)
        if restored.shape != self.data.shape:
            raise ValueError(
                f"buffer {self.protect_id}: recovered shape {restored.shape} "
                f"does not match live shape {self.data.shape}"
            )
        self.data[...] = restored

    def content_digest(self) -> str:
        """SHA-256 of the content; used by integrity checks and tests."""
        return hashlib.sha256(self.data.tobytes()).hexdigest()

    @classmethod
    def from_array(
        cls,
        protect_id: int,
        array: np.ndarray,
        kind: MemoryKind,
        dtype: Optional[FtiDataType] = None,
    ) -> "ProtectedBuffer":
        """Protect a fully materialised array (small, test-sized regions)."""
        if dtype is None:
            dtype = _dtype_for(array.dtype)
        return cls(
            protect_id=protect_id,
            kind=kind,
            dtype=dtype,
            count=int(array.size),
            data=array,
            synthetic=False,
        )

    @classmethod
    def synthetic_region(
        cls,
        protect_id: int,
        kind: MemoryKind,
        nbytes: int,
        dtype: FtiDataType = FtiDataType.FTI_DBLE,
        witness_elements: int = 1024,
        seed: int = 0,
    ) -> "ProtectedBuffer":
        """A large logical region represented by a small random witness array."""
        if nbytes <= 0:
            raise ValueError("synthetic region must have a positive size")
        count = max(1, nbytes // dtype.itemsize)
        rng = np.random.default_rng(seed)
        witness = rng.random(min(witness_elements, count)).astype(dtype.numpy_dtype)
        return cls(
            protect_id=protect_id,
            kind=kind,
            dtype=dtype,
            count=count,
            data=witness,
            synthetic=True,
        )


def _dtype_for(np_dtype: np.dtype) -> FtiDataType:
    """Map a NumPy dtype onto the closest FTI datatype."""
    mapping = {
        np.dtype("int32"): FtiDataType.FTI_INTG,
        np.dtype("int64"): FtiDataType.FTI_LONG,
        np.dtype("float32"): FtiDataType.FTI_SFLT,
        np.dtype("float64"): FtiDataType.FTI_DBLE,
    }
    try:
        return mapping[np.dtype(np_dtype)]
    except KeyError:
        raise TypeError(f"no FTI datatype for NumPy dtype {np_dtype}") from None
