"""Energy-aware device selection policies shared by the runtimes.

The LEGaTO runtimes "reduce the energy [consumption] of the application by
scheduling the computations to the most energy-efficient device of the
heterogeneous hardware architecture" (Section II).  The policies here rank
candidate devices for one task by different objectives; both the OmpSs-like
runtime and the ecosystem facade use them.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.runtime.devices import ExecutionDevice
from repro.runtime.task import Task


class EnergyPolicy(str, enum.Enum):
    """Device-selection objectives."""

    PERFORMANCE = "performance"      # minimise task finish time
    ENERGY = "energy"                # minimise task energy
    EDP = "edp"                      # minimise energy-delay product
    BALANCED = "balanced"            # weighted blend of normalised time/energy


def _candidates(task: Task, devices: Sequence[ExecutionDevice]) -> List[ExecutionDevice]:
    supported = [device for device in devices if device.supports(task)]
    if not supported:
        raise ValueError(
            f"no device supports task {task.name!r} "
            f"(workload={task.requirements.workload.value})"
        )
    return supported


def score_device(
    task: Task,
    device: ExecutionDevice,
    policy: EnergyPolicy,
    ready_time_s: float = 0.0,
    energy_weight: float = 0.5,
) -> float:
    """Lower-is-better score of running ``task`` on ``device``."""
    start = max(ready_time_s, device.available_at_s)
    finish = start + device.estimate_time_s(task)
    energy = device.estimate_energy_j(task)
    if policy is EnergyPolicy.PERFORMANCE:
        return finish
    if policy is EnergyPolicy.ENERGY:
        return energy
    if policy is EnergyPolicy.EDP:
        return energy * finish
    if policy is EnergyPolicy.BALANCED:
        # Normalise by the task's intrinsic magnitude so the blend is unitless.
        time_scale = device.estimate_time_s(task) or 1.0
        energy_scale = energy or 1.0
        return (1.0 - energy_weight) * (finish / time_scale) + energy_weight * (
            energy / energy_scale
        )
    raise ValueError(f"unknown policy {policy}")


def pick_device(
    task: Task,
    devices: Sequence[ExecutionDevice],
    policy: EnergyPolicy = EnergyPolicy.ENERGY,
    ready_time_s: float = 0.0,
    energy_weight: float = 0.5,
) -> ExecutionDevice:
    """Pick the best device for a task under the given policy."""
    supported = _candidates(task, devices)
    return min(
        supported,
        key=lambda device: (
            score_device(task, device, policy, ready_time_s, energy_weight),
            device.name,
        ),
    )


def rank_devices(
    task: Task,
    devices: Sequence[ExecutionDevice],
    policy: EnergyPolicy = EnergyPolicy.ENERGY,
    ready_time_s: float = 0.0,
) -> List[Tuple[ExecutionDevice, float]]:
    """All supporting devices with their scores, best first."""
    supported = _candidates(task, devices)
    scored = [
        (device, score_device(task, device, policy, ready_time_s)) for device in supported
    ]
    return sorted(scored, key=lambda pair: (pair[1], pair[0].name))


def diverse_devices(
    task: Task, devices: Sequence[ExecutionDevice], count: int
) -> List[ExecutionDevice]:
    """Pick up to ``count`` devices of *different* kinds for replication.

    Selective replication (Section I) replicates reliability-critical tasks
    on *diverse* processing elements so a systematic fault in one device
    class cannot take out every replica.  Devices are ranked by energy and
    picked greedily under the distinct-kind constraint, falling back to
    same-kind devices only when fewer kinds than replicas exist.
    """
    if count <= 0:
        raise ValueError("replica count must be positive")
    ranked = [device for device, _ in rank_devices(task, devices, EnergyPolicy.ENERGY)]
    picked: List[ExecutionDevice] = []
    used_kinds = set()
    for device in ranked:
        if device.kind not in used_kinds:
            picked.append(device)
            used_kinds.add(device.kind)
        if len(picked) == count:
            return picked
    for device in ranked:
        if device not in picked:
            picked.append(device)
        if len(picked) == count:
            break
    return picked
