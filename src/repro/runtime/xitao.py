"""A XiTAO-like elastic task runtime.

XiTAO (Pericas, PACT'16 poster; Section II.C) generalises a task into a
*parallel computation with arbitrary (elastic) resources*: a task carries a
range of resource widths it can use, and the runtime matches task widths to
hardware resources at run time, packing tasks into non-interfering resource
partitions so co-running tasks share the machine constructively.

The model here captures the scheduling-relevant behaviour:

* the machine is a set of :class:`ResourcePartition` core groups,
* an :class:`ElasticTask` scales with a parallel-efficiency curve (Amdahl
  style) as its width grows,
* the runtime picks, for each ready task, the width/partition pair with the
  best completion time (or energy), respecting interference freedom --
  a partition runs one task at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.microserver import MicroserverSpec, WorkloadKind, MICROSERVER_CATALOG
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task


@dataclass(frozen=True)
class ElasticTask:
    """A moldable task: serial work plus a parallelisable fraction."""

    name: str
    work_gops: float
    parallel_fraction: float = 0.9
    min_width: int = 1
    max_width: int = 8
    workload: WorkloadKind = WorkloadKind.DATA_PARALLEL

    def __post_init__(self) -> None:
        if self.work_gops <= 0:
            raise ValueError("work must be positive")
        if not (0.0 <= self.parallel_fraction <= 1.0):
            raise ValueError("parallel fraction must be within [0, 1]")
        if not (1 <= self.min_width <= self.max_width):
            raise ValueError("need 1 <= min_width <= max_width")

    def speedup(self, width: int) -> float:
        """Amdahl speedup at the given width."""
        if width < 1:
            raise ValueError("width must be at least 1")
        serial = 1.0 - self.parallel_fraction
        return 1.0 / (serial + self.parallel_fraction / width)

    def efficiency(self, width: int) -> float:
        return self.speedup(width) / width

    def execution_time_s(self, width: int, core_gops: float) -> float:
        """Time at a width given the per-core throughput of the partition."""
        if core_gops <= 0:
            raise ValueError("per-core throughput must be positive")
        serial_time = self.work_gops / core_gops
        return serial_time / self.speedup(width)


@dataclass
class ResourcePartition:
    """A group of cores that runs one elastic task at a time."""

    name: str
    cores: int
    core_gops: float
    core_power_w: float
    busy_until_s: float = 0.0
    executed: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("partition needs at least one core")
        if self.core_gops <= 0 or self.core_power_w <= 0:
            raise ValueError("per-core figures must be positive")

    def widths_for(self, task: ElasticTask) -> List[int]:
        upper = min(task.max_width, self.cores)
        if upper < task.min_width:
            return []
        return list(range(task.min_width, upper + 1))

    def estimate(self, task: ElasticTask, width: int, ready_s: float) -> Tuple[float, float, float]:
        """(start, finish, energy) estimate for running the task at a width."""
        start = max(ready_s, self.busy_until_s)
        duration = task.execution_time_s(width, self.core_gops)
        energy = duration * width * self.core_power_w
        return start, start + duration, energy

    def execute(self, task: ElasticTask, width: int, ready_s: float) -> Tuple[float, float, float]:
        start, finish, energy = self.estimate(task, width, ready_s)
        self.busy_until_s = finish
        self.executed.append((task.name, width))
        return start, finish, energy


@dataclass(frozen=True)
class XitaoPlacement:
    """One placed elastic task."""

    task: ElasticTask
    partition: str
    width: int
    start_s: float
    finish_s: float
    energy_j: float


@dataclass
class XitaoTrace:
    """Outcome of an elastic-runtime run."""

    placements: List[XitaoPlacement] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((p.finish_s for p in self.placements), default=0.0)

    @property
    def total_energy_j(self) -> float:
        return sum(p.energy_j for p in self.placements)

    def width_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for placement in self.placements:
            histogram[placement.width] = histogram.get(placement.width, 0) + 1
        return histogram


def partitions_from_spec(spec: MicroserverSpec, groups: int = 4) -> List[ResourcePartition]:
    """Carve a CPU microserver into equal core partitions (XiTAO topology)."""
    if groups <= 0:
        raise ValueError("need at least one partition")
    cores_per_group = max(1, spec.cores // groups)
    core_gops = spec.throughput_gops[WorkloadKind.DATA_PARALLEL] / spec.cores
    core_power = (spec.peak_power_w - spec.idle_power_w) / spec.cores
    return [
        ResourcePartition(
            name=f"{spec.model}-p{i}",
            cores=cores_per_group,
            core_gops=core_gops,
            core_power_w=max(core_power, 1e-3),
        )
        for i in range(groups)
    ]


class XitaoRuntime:
    """Greedy elastic scheduler over a set of resource partitions."""

    def __init__(
        self,
        partitions: Optional[Sequence[ResourcePartition]] = None,
        objective: str = "time",
    ) -> None:
        if partitions is None:
            partitions = partitions_from_spec(MICROSERVER_CATALOG["xeon-d-x86"], groups=4)
        if not partitions:
            raise ValueError("the runtime needs at least one partition")
        if objective not in ("time", "energy", "edp"):
            raise ValueError("objective must be 'time', 'energy' or 'edp'")
        self.partitions = list(partitions)
        self.objective = objective

    def _score(self, finish_s: float, energy_j: float) -> float:
        if self.objective == "time":
            return finish_s
        if self.objective == "energy":
            return energy_j
        return finish_s * energy_j

    def schedule(
        self, tasks: Sequence[ElasticTask], dependencies: Optional[Dict[str, List[str]]] = None
    ) -> XitaoTrace:
        """Place all tasks; ``dependencies`` maps task name -> prerequisite names."""
        dependencies = dependencies or {}
        finish_times: Dict[str, float] = {}
        trace = XitaoTrace()
        for task in tasks:
            ready = 0.0
            for prerequisite in dependencies.get(task.name, []):
                if prerequisite not in finish_times:
                    raise ValueError(
                        f"task {task.name!r} depends on {prerequisite!r} which is not "
                        "scheduled before it; order the task list topologically"
                    )
                ready = max(ready, finish_times[prerequisite])
            best: Optional[Tuple[float, ResourcePartition, int, float, float, float]] = None
            for partition in self.partitions:
                for width in partition.widths_for(task):
                    start, finish, energy = partition.estimate(task, width, ready)
                    score = self._score(finish, energy)
                    key = (score, partition.name, width)
                    if best is None or key < (best[0], best[1].name, best[2]):
                        best = (score, partition, width, start, finish, energy)
            if best is None:
                raise ValueError(f"no partition can host task {task.name!r}")
            _, partition, width, start, finish, energy = best
            start, finish, energy = partition.execute(task, width, ready)
            finish_times[task.name] = finish
            trace.placements.append(
                XitaoPlacement(
                    task=task,
                    partition=partition.name,
                    width=width,
                    start_s=start,
                    finish_s=finish,
                    energy_j=energy,
                )
            )
        return trace
