"""Execution devices: the runtime's view of the heterogeneous hardware.

OmpSs targets SMP cores, GPUs through CUDA/OpenCL kernels, and FPGAs through
vendor HLS-generated bitstreams (Section II.C/D).  An
:class:`ExecutionDevice` wraps one :class:`~repro.hardware.microserver.Microserver`
with the runtime-facing attributes: which target kind it is, whether it
needs a generated kernel/bitstream, its data-transfer cost from the host,
and the reconfiguration cost FPGAs pay when switching bitstreams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.microserver import (
    DeviceKind,
    Microserver,
    MicroserverSpec,
    WorkloadKind,
    make_microserver,
)
from repro.runtime.task import Task


class TargetKind(str, enum.Enum):
    """Programming-model targets supported by the OmpSs backend."""

    SMP = "smp"
    CUDA = "cuda"
    OPENCL = "opencl"
    FPGA = "fpga"

    @staticmethod
    def for_device(kind: DeviceKind) -> "TargetKind":
        if kind.is_cpu:
            return TargetKind.SMP
        if kind is DeviceKind.GPU:
            return TargetKind.CUDA
        if kind is DeviceKind.GPU_SOC:
            return TargetKind.OPENCL
        return TargetKind.FPGA


#: host <-> accelerator staging bandwidth in GB/s per target kind.
_STAGING_GBPS: Dict[TargetKind, float] = {
    TargetKind.SMP: 0.0,      # no staging needed
    TargetKind.CUDA: 12.0,
    TargetKind.OPENCL: 6.0,
    TargetKind.FPGA: 8.0,
}

#: FPGA partial-reconfiguration time when switching to a different bitstream.
FPGA_RECONFIG_S = 0.08


@dataclass
class ExecutionDevice:
    """One schedulable device as the runtime sees it."""

    microserver: Microserver
    target: TargetKind = field(init=False)
    loaded_bitstream: Optional[str] = None
    _time_s: float = 0.0
    _energy_j: float = 0.0
    _executed: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.target = TargetKind.for_device(self.microserver.spec.kind)

    # ------------------------------------------------------------------ #
    # Identity / capability
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.microserver.node_id

    @property
    def kind(self) -> DeviceKind:
        return self.microserver.spec.kind

    @property
    def spec(self) -> MicroserverSpec:
        return self.microserver.spec

    def supports(self, task: Task) -> bool:
        """Device-kind allow-list plus memory fit."""
        requirements = task.requirements
        if not requirements.allows(self.kind):
            return False
        return requirements.memory_gib <= self.spec.memory_gib

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def staging_time_s(self, task: Task) -> float:
        """Time to move the task's footprint to/from the accelerator."""
        bandwidth = _STAGING_GBPS[self.target]
        if bandwidth <= 0.0:
            return 0.0
        return task.footprint_bytes / (bandwidth * 1e9)

    def reconfiguration_time_s(self, task: Task) -> float:
        """FPGA bitstream switch cost when the task needs a different kernel."""
        if self.target is not TargetKind.FPGA:
            return 0.0
        return 0.0 if self.loaded_bitstream == task.name else FPGA_RECONFIG_S

    def estimate_time_s(self, task: Task) -> float:
        compute = self.spec.execution_time_s(task.requirements.workload, task.requirements.gops)
        return compute + self.staging_time_s(task) + self.reconfiguration_time_s(task)

    def estimate_energy_j(self, task: Task) -> float:
        return self.spec.active_power_w(1.0) * self.estimate_time_s(task)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def available_at_s(self) -> float:
        return self._time_s

    def execute(self, task: Task, earliest_start_s: float = 0.0) -> Tuple[float, float, float]:
        """Run the task; returns (start, finish, energy)."""
        if not self.supports(task):
            raise ValueError(f"device {self.name} cannot run task {task.name!r}")
        start = max(earliest_start_s, self._time_s)
        duration = self.estimate_time_s(task)
        energy = self.estimate_energy_j(task)
        finish = start + duration
        self._time_s = finish
        self._energy_j += energy
        self._executed.append(task.name)
        if self.target is TargetKind.FPGA:
            self.loaded_bitstream = task.name
        self.microserver.energy.charge(energy)
        self.microserver.busy_until_s = finish
        task.run()
        return start, finish, energy

    @property
    def consumed_energy_j(self) -> float:
        return self._energy_j

    @property
    def executed_tasks(self) -> Sequence[str]:
        return tuple(self._executed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ExecutionDevice({self.name}, target={self.target.value})"


def build_devices(models: Iterable[str]) -> List[ExecutionDevice]:
    """Build execution devices from catalogue model names."""
    return [ExecutionDevice(make_microserver(model)) for model in models]


def build_devices_from_microservers(microservers: Iterable[Microserver]) -> List[ExecutionDevice]:
    """Wrap existing microservers (e.g. a RecsBox population) as devices."""
    return [ExecutionDevice(m) for m in microservers]
