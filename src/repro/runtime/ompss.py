"""An OmpSs-like dataflow task runtime.

The runtime accepts task submissions (building the task dependency graph
from the declared accesses), schedules ready tasks onto the available
heterogeneous devices according to a :class:`SchedulingPolicy`, and executes
them on the simulated hardware, producing an :class:`ExecutionTrace` with
per-task placement, timing and energy -- the information the LEGaTO
energy/reliability analyses need.

The scheduler is list-scheduling over the TDG: tasks become ready when all
predecessors finished; among ready tasks the earliest-submitted is placed
first; the device is chosen by the energy policy (Section II: "scheduling
the computations to the most energy-efficient device").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.microserver import WorkloadKind
from repro.runtime.devices import ExecutionDevice, build_devices
from repro.runtime.energy import EnergyPolicy, pick_device
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task


class SchedulingPolicy(str, enum.Enum):
    """Task-to-device mapping objectives supported by the runtime."""

    PERFORMANCE = "performance"
    ENERGY = "energy"
    EDP = "edp"
    BALANCED = "balanced"

    @property
    def energy_policy(self) -> EnergyPolicy:
        return EnergyPolicy(self.value)


@dataclass(frozen=True)
class TaskExecution:
    """Placement and accounting of one executed task."""

    task: Task
    device_name: str
    device_kind: str
    start_s: float
    finish_s: float
    energy_j: float

    @property
    def duration_s(self) -> float:
        return self.finish_s - self.start_s


@dataclass
class ExecutionTrace:
    """The outcome of running a task graph."""

    executions: List[TaskExecution] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((e.finish_s for e in self.executions), default=0.0)

    @property
    def total_energy_j(self) -> float:
        return sum(e.energy_j for e in self.executions)

    @property
    def energy_delay_product(self) -> float:
        return self.total_energy_j * self.makespan_s

    def execution_of(self, task_name: str) -> TaskExecution:
        for execution in self.executions:
            if execution.task.name == task_name:
                return execution
        raise KeyError(f"no execution recorded for task {task_name!r}")

    def device_utilisation(self) -> Dict[str, float]:
        """Busy time per device name."""
        usage: Dict[str, float] = {}
        for execution in self.executions:
            usage[execution.device_name] = usage.get(execution.device_name, 0.0) + execution.duration_s
        return usage

    def tasks_per_device_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for execution in self.executions:
            counts[execution.device_kind] = counts.get(execution.device_kind, 0) + 1
        return counts

    def average_power_w(self) -> float:
        makespan = self.makespan_s
        return self.total_energy_j / makespan if makespan > 0 else 0.0


class OmpSsRuntime:
    """The OmpSs-like runtime: submit tasks, then ``taskwait`` to execute."""

    def __init__(
        self,
        devices: Optional[Sequence[ExecutionDevice]] = None,
        policy: SchedulingPolicy = SchedulingPolicy.ENERGY,
        energy_weight: float = 0.5,
    ) -> None:
        if devices is None:
            devices = build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"])
        if not devices:
            raise ValueError("the runtime needs at least one device")
        self.devices = list(devices)
        self.policy = policy
        self.energy_weight = energy_weight
        self.graph = TaskGraph()
        self._trace = ExecutionTrace()
        self._executed: Dict[Task, TaskExecution] = {}

    # ------------------------------------------------------------------ #
    # Submission API (mirrors #pragma omp task)
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> Task:
        """Submit one task; dependences are derived from its data accesses."""
        return self.graph.add_task(task)

    def submit_all(self, tasks: Iterable[Task]) -> None:
        for task in tasks:
            self.submit(task)

    # ------------------------------------------------------------------ #
    # Execution (taskwait)
    # ------------------------------------------------------------------ #
    def taskwait(self) -> ExecutionTrace:
        """Execute every submitted-but-not-yet-executed task to completion."""
        pending = [task for task in self.graph.topological_order() if task not in self._executed]
        for task in pending:
            ready_time = 0.0
            for predecessor in self.graph.predecessors(task):
                if predecessor not in self._executed:
                    raise RuntimeError(
                        f"task {task.name!r} scheduled before predecessor "
                        f"{predecessor.name!r}; topological order violated"
                    )
                ready_time = max(ready_time, self._executed[predecessor].finish_s)
            device = pick_device(
                task,
                self.devices,
                policy=self.policy.energy_policy,
                ready_time_s=ready_time,
                energy_weight=self.energy_weight,
            )
            start, finish, energy = device.execute(task, earliest_start_s=ready_time)
            execution = TaskExecution(
                task=task,
                device_name=device.name,
                device_kind=device.kind.value,
                start_s=start,
                finish_s=finish,
                energy_j=energy,
            )
            self._executed[task] = execution
            self._trace.executions.append(execution)
        return self._trace

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    def run(self, tasks: Iterable[Task]) -> ExecutionTrace:
        """Convenience: submit a batch and execute it."""
        self.submit_all(tasks)
        return self.taskwait()


def compare_policies(
    tasks_factory, device_models: Sequence[str], policies: Iterable[SchedulingPolicy]
) -> Dict[SchedulingPolicy, ExecutionTrace]:
    """Run the same task graph under several policies on fresh devices.

    ``tasks_factory`` is a zero-argument callable returning a fresh list of
    tasks (tasks carry identity, so each run needs its own instances).
    """
    results: Dict[SchedulingPolicy, ExecutionTrace] = {}
    for policy in policies:
        runtime = OmpSsRuntime(devices=build_devices(device_models), policy=policy)
        results[policy] = runtime.run(tasks_factory())
    return results
