"""The task dependency graph (TDG) derived from declared data accesses.

OmpSs derives dependences from the order of task submission and the declared
``in``/``out``/``inout`` accesses: a task that reads a region depends on the
last task that wrote it (RAW); a task that writes a region depends on the
last writer (WAW) and on all readers since that writer (WAR).  The TDG is
also what the fault-tolerance layer walks to analyse error propagation and
what the checkpointing layer uses to find consistent cut points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.runtime.task import Task


class TaskGraph:
    """A DAG of tasks with dependence edges derived from data accesses."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._last_writer: Dict[str, Task] = {}
        self._readers_since_write: Dict[str, List[Task]] = {}
        self._submission_order: List[Task] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task) -> Task:
        """Add a task, wiring dependences against previously submitted tasks."""
        if task in self._graph:
            raise ValueError(f"task {task.name!r} already submitted")
        self._graph.add_node(task)
        self._submission_order.append(task)

        for region in task.reads:
            writer = self._last_writer.get(region)
            if writer is not None and writer is not task:
                self._graph.add_edge(writer, task, region=region, kind="raw")
            self._readers_since_write.setdefault(region, []).append(task)

        for region in task.writes:
            writer = self._last_writer.get(region)
            if writer is not None and writer is not task:
                self._graph.add_edge(writer, task, region=region, kind="waw")
            for reader in self._readers_since_write.get(region, []):
                if reader is not task:
                    self._graph.add_edge(reader, task, region=region, kind="war")
            self._last_writer[region] = task
            self._readers_since_write[region] = []

        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"adding task {task.name!r} created a dependence cycle")
        return task

    def add_tasks(self, tasks: Iterable[Task]) -> None:
        for task in tasks:
            self.add_task(task)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def tasks(self) -> List[Task]:
        return list(self._submission_order)

    @property
    def num_tasks(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def predecessors(self, task: Task) -> List[Task]:
        return list(self._graph.predecessors(task))

    def successors(self, task: Task) -> List[Task]:
        return list(self._graph.successors(task))

    def descendants(self, task: Task) -> Set[Task]:
        return set(nx.descendants(self._graph, task))

    def ancestors(self, task: Task) -> Set[Task]:
        return set(nx.ancestors(self._graph, task))

    def roots(self) -> List[Task]:
        return [t for t in self._submission_order if self._graph.in_degree(t) == 0]

    def leaves(self) -> List[Task]:
        return [t for t in self._submission_order if self._graph.out_degree(t) == 0]

    def topological_order(self) -> List[Task]:
        """Dependence-respecting order with submission order as tie-breaker."""
        return self._stable_topological()

    def _stable_topological(self) -> List[Task]:
        position = {task: i for i, task in enumerate(self._submission_order)}
        in_degree = {task: self._graph.in_degree(task) for task in self._graph}
        ready = sorted([t for t, d in in_degree.items() if d == 0], key=position.get)
        order: List[Task] = []
        while ready:
            task = ready.pop(0)
            order.append(task)
            for successor in self._graph.successors(task):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort(key=position.get)
        if len(order) != self.num_tasks:
            raise RuntimeError("topological sort incomplete; graph has a cycle")
        return order

    def waves(self) -> List[List[Task]]:
        """Antichains of tasks that may run concurrently (generation levels)."""
        position = {task: i for i, task in enumerate(self._submission_order)}
        generations = nx.topological_generations(self._graph)
        return [sorted(generation, key=position.get) for generation in generations]

    def critical_path(self, weight_fn=None) -> Tuple[List[Task], float]:
        """Longest path through the DAG; weight defaults to task gops."""
        if self.num_tasks == 0:
            return [], 0.0
        weight_fn = weight_fn or (lambda task: task.requirements.gops)
        weighted = nx.DiGraph()
        for task in self._graph.nodes:
            weighted.add_node(task)
        for src, dst in self._graph.edges:
            weighted.add_edge(src, dst, weight=weight_fn(dst))
        # Account for the entry task's own weight by taking the max over roots.
        path = nx.dag_longest_path(weighted, weight="weight")
        length = sum(weight_fn(task) for task in path)
        return path, length

    def edge_region(self, src: Task, dst: Task) -> Optional[str]:
        data = self._graph.get_edge_data(src, dst)
        return data.get("region") if data else None

    def parallelism_profile(self) -> List[int]:
        """Number of tasks per wave; a quick view of available parallelism."""
        return [len(wave) for wave in self.waves()]

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph for external analysis."""
        return self._graph.copy()
