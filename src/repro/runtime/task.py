"""The task model: OmpSs-style tasks with declared data accesses.

A task is a unit of computation with

* a set of :class:`DataAccess` declarations (``in`` / ``out`` / ``inout`` on
  named data regions) from which the runtime derives dependences, and from
  which the checkpointing layer knows exactly which data is *necessary and
  sufficient* to checkpoint at task granularity (Section I);
* :class:`TaskRequirements` describing the work (workload kind and amount),
  resource needs (memory, preferred/required device kinds, elastic width)
  and cross-cutting attributes (reliability-critical, secure).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.microserver import DeviceKind, WorkloadKind


class AccessMode(str, enum.Enum):
    """OmpSs dependence clauses."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)


@dataclass(frozen=True)
class DataAccess:
    """One declared access to a named data region."""

    region: str
    mode: AccessMode
    size_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("data region name must be non-empty")
        if self.size_bytes < 0:
            raise ValueError("region size must be non-negative")


@dataclass(frozen=True)
class TaskRequirements:
    """Resource and policy requirements of a task."""

    workload: WorkloadKind = WorkloadKind.SCALAR
    gops: float = 1.0
    memory_gib: float = 0.1
    min_width: int = 1
    max_width: int = 1
    allowed_devices: Optional[FrozenSet[DeviceKind]] = None
    reliability_critical: bool = False
    secure: bool = False

    def __post_init__(self) -> None:
        if self.gops <= 0:
            raise ValueError("task work must be positive")
        if self.memory_gib < 0:
            raise ValueError("memory requirement must be non-negative")
        if not (1 <= self.min_width <= self.max_width):
            raise ValueError("need 1 <= min_width <= max_width")

    def allows(self, kind: DeviceKind) -> bool:
        return self.allowed_devices is None or kind in self.allowed_devices


_task_ids = itertools.count()


@dataclass
class Task:
    """A schedulable task."""

    name: str
    requirements: TaskRequirements = field(default_factory=TaskRequirements)
    accesses: Tuple[DataAccess, ...] = ()
    function: Optional[Callable[[], object]] = None
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        regions = [access.region for access in self.accesses]
        if len(regions) != len(set(regions)):
            raise ValueError(f"task {self.name!r} declares duplicate accesses: {regions}")

    # ------------------------------------------------------------------ #
    # Access queries
    # ------------------------------------------------------------------ #
    @property
    def reads(self) -> FrozenSet[str]:
        return frozenset(a.region for a in self.accesses if a.mode.reads)

    @property
    def writes(self) -> FrozenSet[str]:
        return frozenset(a.region for a in self.accesses if a.mode.writes)

    @property
    def footprint_bytes(self) -> float:
        """Total bytes touched; the task-level checkpoint size (Section I)."""
        return sum(a.size_bytes for a in self.accesses)

    def checkpoint_payload(self) -> FrozenSet[str]:
        """Regions that must be saved to restart *after* this task: its outputs."""
        return self.writes

    def run(self) -> object:
        """Execute the attached Python function, if any (functional mode)."""
        if self.function is None:
            return None
        return self.function()

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task({self.name!r}, id={self.task_id})"


def make_task(
    name: str,
    workload: WorkloadKind = WorkloadKind.SCALAR,
    gops: float = 1.0,
    memory_gib: float = 0.1,
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    inouts: Iterable[str] = (),
    region_size_bytes: float = 0.0,
    reliability_critical: bool = False,
    secure: bool = False,
    allowed_devices: Optional[Iterable[DeviceKind]] = None,
    function: Optional[Callable[[], object]] = None,
    min_width: int = 1,
    max_width: int = 1,
) -> Task:
    """Ergonomic task constructor used by examples, the compiler and tests."""
    accesses: List[DataAccess] = []
    for region in inputs:
        accesses.append(DataAccess(region, AccessMode.IN, region_size_bytes))
    for region in outputs:
        accesses.append(DataAccess(region, AccessMode.OUT, region_size_bytes))
    for region in inouts:
        accesses.append(DataAccess(region, AccessMode.INOUT, region_size_bytes))
    requirements = TaskRequirements(
        workload=workload,
        gops=gops,
        memory_gib=memory_gib,
        min_width=min_width,
        max_width=max_width,
        allowed_devices=frozenset(allowed_devices) if allowed_devices is not None else None,
        reliability_critical=reliability_critical,
        secure=secure,
    )
    return Task(name=name, requirements=requirements, accesses=tuple(accesses), function=function)
