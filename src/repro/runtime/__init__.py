"""Task-based runtimes: the OmpSs- and XiTAO-like layers (Section II.C).

LEGaTO builds on two task runtimes:

* **OmpSs** -- dataflow task parallelism (very close to OpenMP tasking):
  tasks declare ``in``/``out``/``inout`` accesses on named data, the runtime
  derives the task dependency graph and schedules ready tasks onto SMP
  cores, GPUs (CUDA/OpenCL) and FPGAs.
* **XiTAO** -- generalises a task into a *parallel computation with elastic
  resources*: the runtime matches each task's resource width (cores, memory)
  to the hardware at run time, giving constructive sharing and interference
  freedom.

On top of the task abstraction the project layers its fault-tolerance
features (Section I): intelligent replication of reliability-critical tasks
on diverse processing elements, error-propagation analysis by walking the
task dependency graph, and task-level checkpointing of exactly the data
declared at task boundaries.
"""

from repro.runtime.task import AccessMode, DataAccess, Task, TaskRequirements
from repro.runtime.graph import TaskGraph
from repro.runtime.devices import ExecutionDevice, TargetKind, build_devices
from repro.runtime.ompss import OmpSsRuntime, SchedulingPolicy, ExecutionTrace, TaskExecution
from repro.runtime.xitao import ElasticTask, ResourcePartition, XitaoRuntime, XitaoTrace
from repro.runtime.fault_tolerance import (
    FaultInjector,
    FaultModel,
    ReplicationPolicy,
    ResilientExecutor,
    ResilienceReport,
    propagate_errors,
)
from repro.runtime.energy import EnergyPolicy, pick_device

__all__ = [
    "AccessMode",
    "DataAccess",
    "Task",
    "TaskRequirements",
    "TaskGraph",
    "ExecutionDevice",
    "TargetKind",
    "build_devices",
    "OmpSsRuntime",
    "SchedulingPolicy",
    "ExecutionTrace",
    "TaskExecution",
    "ElasticTask",
    "ResourcePartition",
    "XitaoRuntime",
    "XitaoTrace",
    "FaultInjector",
    "FaultModel",
    "ReplicationPolicy",
    "ResilientExecutor",
    "ResilienceReport",
    "propagate_errors",
    "EnergyPolicy",
    "pick_device",
]
