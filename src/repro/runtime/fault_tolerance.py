"""Task-level fault tolerance on top of the OmpSs-like runtime (Section I).

The paper lists three runtime fault-tolerance mechanisms the task
abstraction enables:

* **intelligent / selective replication** -- replicate tasks on *diverse*
  processing elements, and only the reliability-critical tasks when energy
  matters ("energy-efficient selective replication");
* **error-propagation analysis** -- because every task declares what it
  reads and writes, an error detected in one task can be tracked along the
  task dependency graph to find which downstream tasks (and data) are
  potentially corrupted, helping root-cause analysis;
* **task-level checkpointing** -- only the data declared at task entry needs
  saving, so checkpoints are minimal (this hooks into
  :mod:`repro.checkpoint`).

This module implements the first two plus a fault injector, and reports the
coverage / energy-overhead trade-off that the ablation benchmark sweeps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.runtime.devices import ExecutionDevice
from repro.runtime.energy import EnergyPolicy, diverse_devices, pick_device
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task


class ReplicationPolicy(str, enum.Enum):
    """How aggressively tasks are replicated."""

    NONE = "none"            # no replication: faults go undetected
    FULL = "full"            # every task runs twice (dual modular redundancy)
    SELECTIVE = "selective"  # only reliability-critical tasks are replicated
    TRIPLE_CRITICAL = "triple_critical"  # critical tasks run three times (voting)

    def replicas_for(self, task: Task) -> int:
        if self is ReplicationPolicy.NONE:
            return 1
        if self is ReplicationPolicy.FULL:
            return 2
        if self is ReplicationPolicy.SELECTIVE:
            return 2 if task.requirements.reliability_critical else 1
        if self is ReplicationPolicy.TRIPLE_CRITICAL:
            return 3 if task.requirements.reliability_critical else 1
        raise ValueError(f"unknown policy {self}")


@dataclass(frozen=True)
class FaultModel:
    """The shared fault-probability distribution, decoupled from its RNG.

    One model, two injectors: the task-level :class:`FaultInjector`
    draws from it per task execution, and the cluster-level chaos layer
    (:class:`repro.scenarios.chaos.ChaosEngine`) draws from it per
    probabilistic :class:`~repro.scenarios.spec.ChaosEventSpec`.  Both
    therefore share one draw procedure and ordering -- a fault stream is
    fully determined by ``(model parameters, seed)`` no matter which
    layer consumes it.
    """

    fault_probability: float = 0.05
    systematic_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not (0.0 <= self.fault_probability <= 1.0):
            raise ValueError("fault probability must be within [0, 1]")
        if not (0.0 <= self.systematic_fraction <= 1.0):
            raise ValueError("systematic fraction must be within [0, 1]")

    def draw(self, rng: np.random.Generator) -> Tuple[bool, bool]:
        """Draw one fault outcome from a caller-owned generator.

        Args:
            rng: the seeded generator to consume from (one uniform, plus
                a second only when the first lands a fault).

        Returns:
            ``(faulty, systematic)``: whether this draw is corrupted and
            whether the corruption is systematic (same wrong answer on
            identical hardware).
        """
        faulty = bool(rng.random() < self.fault_probability)
        systematic = bool(faulty and rng.random() < self.systematic_fraction)
        return faulty, systematic


class FaultInjector:
    """Injects silent data corruptions into task executions.

    Each task execution is independently corrupted with probability
    ``fault_probability``; device diversity matters because a *systematic*
    fault (same wrong answer on identical hardware) defeats replication on
    identical devices -- controlled by ``systematic_fraction``.

    The distribution itself lives in :class:`FaultModel` (shared with the
    cluster-level chaos layer); this class pairs it with an owned seeded
    generator.
    """

    def __init__(
        self,
        fault_probability: float = 0.05,
        systematic_fraction: float = 0.2,
        seed: int = 42,
    ) -> None:
        self.model = FaultModel(
            fault_probability=fault_probability,
            systematic_fraction=systematic_fraction,
        )
        self.rng = np.random.default_rng(seed)

    @property
    def fault_probability(self) -> float:
        """The model's per-execution corruption probability."""
        return self.model.fault_probability

    @property
    def systematic_fraction(self) -> float:
        """The model's share of faults that are systematic."""
        return self.model.systematic_fraction

    def draw_fault(self) -> Tuple[bool, bool]:
        """(faulty, systematic): whether this execution is corrupted and how."""
        return self.model.draw(self.rng)


@dataclass
class TaskOutcome:
    """Fault-tolerance outcome of one logical task."""

    task: Task
    replicas: int
    device_kinds: Tuple[str, ...]
    faulty: bool
    detected: bool
    energy_j: float
    time_s: float


@dataclass
class ResilienceReport:
    """Aggregate outcome of a resilient execution."""

    outcomes: List[TaskOutcome] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    @property
    def makespan_s(self) -> float:
        return sum(o.time_s for o in self.outcomes)

    @property
    def injected_faults(self) -> int:
        return sum(1 for o in self.outcomes if o.faulty)

    @property
    def detected_faults(self) -> int:
        return sum(1 for o in self.outcomes if o.faulty and o.detected)

    @property
    def undetected_faults(self) -> int:
        return self.injected_faults - self.detected_faults

    @property
    def detection_coverage(self) -> float:
        if self.injected_faults == 0:
            return 1.0
        return self.detected_faults / self.injected_faults

    def critical_coverage(self) -> float:
        """Coverage restricted to reliability-critical tasks."""
        critical = [o for o in self.outcomes if o.task.requirements.reliability_critical]
        faulty = [o for o in critical if o.faulty]
        if not faulty:
            return 1.0
        return sum(1 for o in faulty if o.detected) / len(faulty)


class ResilientExecutor:
    """Executes a task graph with replication-based fault detection."""

    def __init__(
        self,
        devices: Sequence[ExecutionDevice],
        policy: ReplicationPolicy = ReplicationPolicy.SELECTIVE,
        injector: Optional[FaultInjector] = None,
        energy_policy: EnergyPolicy = EnergyPolicy.ENERGY,
    ) -> None:
        if not devices:
            raise ValueError("resilient execution needs at least one device")
        self.devices = list(devices)
        self.policy = policy
        self.injector = injector if injector is not None else FaultInjector()
        self.energy_policy = energy_policy

    def execute(self, graph: TaskGraph) -> ResilienceReport:
        """Run every task (with replicas) and detect faults by comparison."""
        report = ResilienceReport()
        for task in graph.topological_order():
            replicas = self.policy.replicas_for(task)
            if replicas == 1:
                device = pick_device(task, self.devices, policy=self.energy_policy)
                chosen = [device]
            else:
                chosen = diverse_devices(task, self.devices, replicas)
            energy = 0.0
            time_total = 0.0
            replica_results: List[Tuple[bool, bool, str]] = []
            for device in chosen:
                faulty, systematic = self.injector.draw_fault()
                energy += device.estimate_energy_j(task)
                time_total = max(time_total, device.estimate_time_s(task))
                replica_results.append((faulty, systematic, device.kind.value))
            primary_faulty = replica_results[0][0]
            detected = self._detect(replica_results)
            report.outcomes.append(
                TaskOutcome(
                    task=task,
                    replicas=len(chosen),
                    device_kinds=tuple(kind for _, _, kind in replica_results),
                    faulty=primary_faulty,
                    detected=detected,
                    energy_j=energy,
                    time_s=time_total,
                )
            )
        return report

    @staticmethod
    def _detect(replica_results: List[Tuple[bool, bool, str]]) -> bool:
        """Fault detection by replica comparison.

        A fault in the primary is detected when at least one other replica
        produced a differing result.  A *systematic* fault reproduces
        identically on replicas of the same device kind, so it escapes
        detection unless a replica ran on a different kind -- this is exactly
        why the paper replicates on diverse processing elements.
        """
        primary_faulty, primary_systematic, primary_kind = replica_results[0]
        if not primary_faulty:
            return False
        if len(replica_results) == 1:
            return False
        for faulty, _, kind in replica_results[1:]:
            if not faulty:
                if primary_systematic and kind == primary_kind:
                    # Same systematic wrong answer on identical hardware.
                    continue
                return True
            # Both replicas faulty: independent corruptions almost surely
            # differ, so the mismatch is still detected.
            return True
        return False


def propagate_errors(graph: TaskGraph, corrupted_task: Task) -> Dict[str, Set]:
    """Walk the TDG forward from a corrupted task (error-propagation analysis).

    Returns the potentially corrupted downstream tasks and data regions; this
    is the "detecting error propagation across task boundaries and walking
    the task dependency graph at runtime" capability of Section I.
    """
    if corrupted_task not in graph.to_networkx():
        raise KeyError(f"task {corrupted_task.name!r} is not part of the graph")
    tainted_tasks: Set[Task] = {corrupted_task}
    tainted_regions: Set[str] = set(corrupted_task.writes)
    for task in graph.topological_order():
        if task in tainted_tasks:
            continue
        if task.reads & tainted_regions:
            tainted_tasks.add(task)
            tainted_regions |= task.writes
    tainted_tasks.discard(corrupted_task)
    return {
        "tasks": tainted_tasks,
        "regions": tainted_regions,
        "task_names": {t.name for t in tainted_tasks},
    }


def failure_root_candidates(graph: TaskGraph, failed_task: Task) -> List[Task]:
    """Walk the TDG backward from a failed task to list root-cause candidates."""
    ancestors = graph.ancestors(failed_task)
    order = {task: i for i, task in enumerate(graph.topological_order())}
    return sorted(ancestors, key=lambda t: order[t])
