"""Federated multi-cluster scheduling: many HEATS shards, one scheduler.

PR 1's serving front-end still landed every request on a single cluster;
this package adds the layer above it the ROADMAP north star asks for:

* :mod:`repro.federation.policy`     -- shard profiles (regional energy
  price), federation tunables, and the cheap aggregate shard score.
* :mod:`repro.federation.shard`      -- :class:`ClusterShard`: one member
  cluster with its own HEATS scheduler, profiling seed, config copy, and
  prediction-score cache.
* :mod:`repro.federation.federation` -- :class:`FederatedScheduler`
  (two-level placement, tenant affinity, cross-shard migration),
  :class:`FederatedCluster` (the union view the simulator drives), and
  the :class:`Federation` facade built by ``LegatoSystem.federate()``.
"""

from repro.federation.policy import (
    DEFAULT_SHARD_PROFILES,
    FederationConfig,
    ShardProfile,
    ShardScore,
    score_shards,
)
from repro.federation.shard import ClusterShard
from repro.federation.federation import (
    FederatedCluster,
    FederatedScheduler,
    Federation,
    FederationStats,
)

__all__ = [
    "ClusterShard",
    "DEFAULT_SHARD_PROFILES",
    "FederatedCluster",
    "FederatedScheduler",
    "Federation",
    "FederationConfig",
    "FederationStats",
    "ShardProfile",
    "ShardScore",
    "score_shards",
]
