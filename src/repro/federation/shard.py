"""One shard of the federation: a cluster plus its own HEATS scheduler.

A shard is an independently operated HEATS deployment: its own cluster,
its own profiling campaign (independent RNG seed, so measurement noise is
uncorrelated across shards), its own scheduler-config *copy* (so tuning
one shard can never drift into another), and its own prediction-score
cache (so tenant affinity keeps each shard's cache hot for the tenants it
serves).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.core.seeding import SeedPolicy
from repro.federation.policy import ShardProfile
from repro.hardware.microserver import MICROSERVER_CATALOG
from repro.scheduler.cluster import CapacitySnapshot, Cluster, ClusterNode
from repro.scheduler.heats import HeatsConfig, HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.serving.cache import PredictionScoreCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry


@dataclass
class ClusterShard:
    """One member cluster of a federation.

    Args:
        name: unique shard name within the federation.
        cluster: the shard's own cluster (node names must be unique across
            the whole federation).
        scheduler: the shard's own HEATS scheduler with models learned on
            this cluster.
        profile: regional profile (energy price) used by shard selection.
        seed: the RNG seed the shard's profiling campaign ran with.
    """

    name: str
    cluster: Cluster
    scheduler: HeatsScheduler
    profile: ShardProfile
    seed: int
    #: nodes grown into the shard since it was built (names/seeds derive
    #: from this counter so elastic additions stay unique and reproducible).
    grown_nodes: int = field(default=0)
    #: the deployment-wide seed-derivation rules; elastic growth probes
    #: with ``seed_policy.probe_seed(seed, grown_nodes)``.
    seed_policy: SeedPolicy = field(default_factory=SeedPolicy)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard needs a name")

    @classmethod
    def build(
        cls,
        index: int,
        profile: ShardProfile,
        scale: int = 1,
        base_seed: int = 7,
        heats_config: Optional[HeatsConfig] = None,
        use_score_cache: bool = True,
        noise_fraction: float = 0.05,
        metrics: Optional["MetricsRegistry"] = None,
        seed_policy: Optional[SeedPolicy] = None,
        cache_capacity: Optional[int] = None,
    ) -> "ClusterShard":
        """Build shard ``index`` with an independent seed and config copy.

        Args:
            index: position of the shard in the federation; determines the
                node-name prefix and the derived profiling seed.
            profile: regional profile assigned to the shard.
            scale: ``heats_testbed`` scale (4 * scale nodes per shard).
            base_seed: federation-level seed; ignored when ``seed_policy``
                is given, otherwise wrapped as ``SeedPolicy(base=...)``.
            heats_config: scheduler tunables; *copied* per shard so no two
                shards ever share a config object.
            use_score_cache: attach a per-shard prediction-score cache.
            noise_fraction: profiling measurement noise.
            metrics: optional shared telemetry bus; shard schedulers
                aggregate their placement signals into it.
            seed_policy: the deployment's seed-derivation rules; the shard
                profiles with ``seed_policy.shard_seed(index)`` so shards
                draw from disjoint noise streams instead of replaying
                identical measurements.
            cache_capacity: LRU bound of the score cache; None keeps the
                cache's own default.

        Returns:
            A ready-to-route :class:`ClusterShard`.
        """
        if index < 0:
            raise ValueError("shard index must be non-negative")
        policy = seed_policy if seed_policy is not None else SeedPolicy(base=base_seed)
        seed = policy.shard_seed(index)
        cluster = Cluster.heats_testbed(scale=scale, prefix=f"shard{index}")
        config = replace(heats_config) if heats_config is not None else HeatsConfig()
        if use_score_cache:
            cache = (
                PredictionScoreCache(capacity=cache_capacity)
                if cache_capacity is not None
                else PredictionScoreCache()
            )
        else:
            cache = None
        scheduler = HeatsScheduler.with_learned_models(
            cluster,
            config=config,
            noise_fraction=noise_fraction,
            seed=seed,
            score_cache=cache,
            metrics=metrics,
        )
        return cls(
            name=f"shard-{index}-{profile.region}",
            cluster=cluster,
            scheduler=scheduler,
            profile=profile,
            seed=seed,
            seed_policy=policy,
        )

    # ------------------------------------------------------------------ #
    # Elastic node membership (used by the autoscaler)
    # ------------------------------------------------------------------ #
    def grow_node(self, model: str, noise_fraction: float = 0.05) -> ClusterNode:
        """Add one catalogue node to the shard, learning its models first.

        The new node is probed and fitted *before* it joins the capacity
        index, so the HEATS scheduler can score it from the moment it
        becomes placeable (a node without learned models would silently
        never be chosen).  The probing seed derives from the shard seed
        and the grow counter via the shard's
        :class:`~repro.core.seeding.SeedPolicy`, so repeated growth is
        reproducible and disjoint from the original campaign.

        Args:
            model: microserver catalogue model name for the new node.
            noise_fraction: profiling measurement noise for the probes.

        Returns:
            The attached node.
        """
        if model not in MICROSERVER_CATALOG:
            raise KeyError(f"no catalogue model {model!r}")
        node = ClusterNode(
            name=f"{self.name}-auto{self.grown_nodes}-{model}",
            spec=MICROSERVER_CATALOG[model],
        )
        campaign = ProfilingCampaign(
            [node],
            noise_fraction=noise_fraction,
            seed=self.seed_policy.probe_seed(self.seed, self.grown_nodes),
        ).run()
        self.scheduler.models.add(campaign.fit().model(node.name))
        self.cluster.add_node(node)
        self.grown_nodes += 1
        return node

    def release_node(self, name: str) -> ClusterNode:
        """Remove an idle node from the shard, dropping its learned models.

        Args:
            name: the node to remove; must be hosting nothing.

        Returns:
            The detached node.
        """
        node = self.cluster.remove_node(name)
        self.scheduler.models.remove(name)
        return node

    # ------------------------------------------------------------------ #
    # Capacity views used by the routing policy
    # ------------------------------------------------------------------ #
    def capacity(self) -> CapacitySnapshot:
        """The shard cluster's O(1) free-capacity aggregates."""
        return self.cluster.capacity()

    def is_saturated(self, free_core_fraction_floor: float) -> bool:
        """Whether the shard's free-core fraction fell below the floor.

        Args:
            free_core_fraction_floor: saturation threshold in [0, 1).

        Returns:
            True when the shard should shed rather than attract load.
        """
        return self.capacity().free_core_fraction < free_core_fraction_floor

    def can_host(self, cores: int, memory_gib: float) -> bool:
        """Cheap pre-check: could *any* node of this shard fit the shape?

        Uses the aggregate snapshot first (a shard with fewer total free
        cores than requested can never fit), falling back to the indexed
        feasibility scan only when the aggregates cannot rule the shard
        out.

        Args:
            cores: requested cores.
            memory_gib: requested memory.

        Returns:
            True when at least one node currently fits the request.
        """
        capacity = self.capacity()
        if capacity.free_cores < cores or capacity.free_memory_gib < memory_gib:
            return False
        return bool(self.cluster.feasible_nodes(cores, memory_gib))

    def has_running_tasks(self) -> bool:
        """Whether any node of the shard is still hosting a task.

        O(1) via the capacity aggregates: the shard is busy exactly when
        some of its cores are reserved (every task reserves at least one).

        Returns:
            True while the shard cannot be retired.
        """
        capacity = self.capacity()
        return capacity.free_cores < capacity.total_cores
