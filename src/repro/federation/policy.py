"""Two-level placement policy: pick a shard cheaply, then place inside it.

Level one never looks at individual nodes.  Every shard is scored from its
cluster's O(1) :class:`~repro.scheduler.cluster.CapacitySnapshot`
aggregates -- free CPU, free memory, thermal headroom -- plus the shard
profile's regional energy price, mirroring the HEATS score shape: a
performance-pressure term and an energy-pressure term blended by the
request's energy weight.  Level two is the existing node-level HEATS
scoring inside the chosen shard, so the per-node model predictions only
ever run over one shard's nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.federation.shard import ClusterShard


@dataclass(frozen=True)
class ShardProfile:
    """Static description of the region a shard is deployed in.

    Args:
        region: region name (e.g. ``eu-north``); tenants with a matching
            ``Tenant.region`` are affinity-seeded to this shard.
        energy_price_per_kwh: regional electricity price used by the
            shard-selection score (energy-leaning traffic prefers cheap
            regions).
        description: free-form note shown in reports.
    """

    region: str
    energy_price_per_kwh: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("shard profile needs a region name")
        if self.energy_price_per_kwh <= 0:
            raise ValueError("energy price must be positive")


#: default regional catalogue cycled over when building a federation; the
#: price spread is what makes the energy term of the shard score meaningful.
DEFAULT_SHARD_PROFILES = (
    ShardProfile("eu-north", 0.08, "hydro-powered, cheapest energy"),
    ShardProfile("us-east", 0.12, "mixed grid"),
    ShardProfile("eu-central", 0.18, "industrial grid"),
    ShardProfile("apac-east", 0.22, "most expensive energy"),
)


@dataclass(frozen=True)
class FederationConfig:
    """Tunables of the federated placement policy.

    Args:
        saturation_free_core_fraction: a shard whose free-core fraction
            drops below this is saturated -- affinity stops pinning to it
            and the rescheduler starts draining it.
        migration_headroom_fraction: minimum free-core fraction a shard
            must have to receive cross-shard migrations.
        max_migrations_per_cycle: cap on cross-shard moves per
            rescheduling pass, bounding migration churn.
        drain_migrations_per_cycle: separate (larger) cap on moves out of
            a *draining* shard per pass -- draining wants to finish fast,
            saturation rebalancing wants to avoid churn.
        cpu_weight / memory_weight: relative weights of the free-CPU and
            free-memory pressure inside the performance term.
        thermal_weight / price_weight: relative weights of thermal
            pressure and energy price inside the energy term.
        rescheduling_interval_s: cadence of the federation's rescheduling
            pass (honoured by the cluster simulator).
        sticky_affinity: when True, a tenant's requests keep routing to
            its pinned shard until that shard saturates.
    """

    saturation_free_core_fraction: float = 0.125
    migration_headroom_fraction: float = 0.25
    max_migrations_per_cycle: int = 4
    drain_migrations_per_cycle: int = 16
    cpu_weight: float = 0.6
    memory_weight: float = 0.4
    thermal_weight: float = 0.5
    price_weight: float = 0.5
    rescheduling_interval_s: float = 60.0
    sticky_affinity: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.saturation_free_core_fraction < 1.0):
            raise ValueError("saturation fraction must be in [0, 1)")
        if not (0.0 <= self.migration_headroom_fraction <= 1.0):
            raise ValueError("migration headroom must be in [0, 1]")
        if self.max_migrations_per_cycle < 0:
            raise ValueError("migration cap must be non-negative")
        if self.drain_migrations_per_cycle <= 0:
            raise ValueError("drain migration cap must be positive")
        for name in ("cpu_weight", "memory_weight", "thermal_weight", "price_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.cpu_weight + self.memory_weight <= 0:
            raise ValueError("performance term needs a positive weight")
        if self.thermal_weight + self.price_weight <= 0:
            raise ValueError("energy term needs a positive weight")
        if self.rescheduling_interval_s <= 0:
            raise ValueError("rescheduling interval must be positive")


@dataclass(frozen=True)
class ShardScore:
    """Score breakdown for one candidate shard (lower is better)."""

    shard: str
    free_core_fraction: float
    free_memory_fraction: float
    thermal_headroom: float
    price_normalised: float
    score: float


def score_shards(
    shards: Sequence["ClusterShard"],
    energy_weight: float,
    config: Optional[FederationConfig] = None,
) -> List[ShardScore]:
    """Rank shards for a request, best (lowest score) first.

    Args:
        shards: candidate shards (typically those that can host the
            request's resource shape).
        energy_weight: the request's energy/performance trade-off in
            [0, 1]; blends the performance-pressure and energy-pressure
            terms exactly like the node-level HEATS score.
        config: federation tunables; defaults to ``FederationConfig()``.

    Returns:
        One :class:`ShardScore` per shard, sorted ascending by score with
        the shard name as deterministic tie-break.
    """
    if not shards:
        return []
    config = config if config is not None else FederationConfig()
    max_price = max(shard.profile.energy_price_per_kwh for shard in shards)
    perf_total = config.cpu_weight + config.memory_weight
    energy_total = config.thermal_weight + config.price_weight
    scores: List[ShardScore] = []
    for shard in shards:
        capacity = shard.cluster.capacity()
        price_norm = shard.profile.energy_price_per_kwh / max_price
        perf_pressure = (
            config.cpu_weight * (1.0 - capacity.free_core_fraction)
            + config.memory_weight * (1.0 - capacity.free_memory_fraction)
        ) / perf_total
        energy_pressure = (
            config.thermal_weight * (1.0 - capacity.thermal_headroom)
            + config.price_weight * price_norm
        ) / energy_total
        score = (1.0 - energy_weight) * perf_pressure + energy_weight * energy_pressure
        scores.append(
            ShardScore(
                shard=shard.name,
                free_core_fraction=capacity.free_core_fraction,
                free_memory_fraction=capacity.free_memory_fraction,
                thermal_headroom=capacity.thermal_headroom,
                price_normalised=price_norm,
                score=score,
            )
        )
    scores.sort(key=lambda s: (s.score, s.shard))
    return scores
