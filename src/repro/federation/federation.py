"""Federated multi-cluster scheduling over sharded HEATS deployments.

The federation is the layer the ROADMAP's "millions of users" north star
needs above a single cluster: N independently operated HEATS shards behind
one scheduler.  Placement is two-level -- a cheap shard pick from O(1)
capacity aggregates (free CPU/memory, thermal headroom, regional energy
price), then the existing node-level HEATS scoring *inside* the chosen
shard only -- so per-request placement work shrinks as the fleet is cut
into more shards.  Tenant affinity keeps each tenant's traffic on one
shard (re-routing only when it saturates) so the per-shard prediction
score caches stay hot, and a cross-shard rescheduling pass drains
saturated shards into shards with headroom.

:class:`FederatedScheduler` implements the same ``SchedulerProtocol`` the
discrete-event :class:`~repro.scheduler.simulation.ClusterSimulator`
drives, over a :class:`FederatedCluster` that unions the shard clusters
(sharing node objects, so both views stay incrementally indexed).  The
whole simulator machinery -- queueing, completions, migration accounting,
energy -- therefore works unchanged on a federation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

from repro.core.seeding import SeedPolicy
from repro.federation.policy import (
    DEFAULT_SHARD_PROFILES,
    FederationConfig,
    ShardProfile,
    ShardScore,
    score_shards,
)
from repro.federation.shard import ClusterShard
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsConfig
from repro.scheduler.placement import Placement
from repro.scheduler.workload import TaskRequest


@dataclass
class FederationStats:
    """Routing telemetry accumulated by a federated scheduler."""

    placements_by_shard: Dict[str, int] = field(default_factory=dict)
    affinity_hits: int = 0
    affinity_misses: int = 0
    region_seeded: int = 0
    cross_shard_migrations: int = 0
    unplaced_requests: int = 0
    drain_migrations: int = 0
    affinity_rebalanced: int = 0

    @property
    def placements(self) -> int:
        """Total number of successful placements across all shards."""
        return sum(self.placements_by_shard.values())

    @property
    def affinity_hit_rate(self) -> float:
        """Fraction of pinned-tenant placements that stayed on the pin."""
        attempts = self.affinity_hits + self.affinity_misses
        return self.affinity_hits / attempts if attempts else 0.0

    def summary(self) -> Dict[str, object]:
        """A compact dict rendering of the routing telemetry.

        Returns:
            Placement counts per shard plus affinity and migration totals.
        """
        return {
            "placements_by_shard": dict(self.placements_by_shard),
            "affinity_hit_rate": round(self.affinity_hit_rate, 4),
            "affinity_hits": self.affinity_hits,
            "affinity_misses": self.affinity_misses,
            "region_seeded": self.region_seeded,
            "cross_shard_migrations": self.cross_shard_migrations,
            "unplaced_requests": self.unplaced_requests,
            "drain_migrations": self.drain_migrations,
            "affinity_rebalanced": self.affinity_rebalanced,
        }


class FederatedCluster(Cluster):
    """The union view of all shard clusters.

    Shares the shard clusters' node objects, so reservations made through
    either view keep both capacity indices up to date (nodes notify every
    subscribed cluster).  The placement engine and simulator operate on
    this view; the shard schedulers operate on their shard's view.  The
    union index costs one extra listener update per reserve/release; it is
    kept (rather than lazily skipped) so the union view stays a fully
    functional ``Cluster`` for any consumer -- stale aggregates would be a
    silent trap.
    """

    def __init__(self, shards: Sequence[ClusterShard]) -> None:
        if not shards:
            raise ValueError("a federation needs at least one shard")
        super().__init__(
            node for shard in shards for node in shard.cluster
        )
        self._shard_of_node: Dict[str, str] = {
            node.name: shard.name for shard in shards for node in shard.cluster
        }

    def shard_of(self, node_name: str) -> str:
        """Name of the shard that owns a node.

        Args:
            node_name: a node of any member shard.

        Returns:
            The owning shard's name.
        """
        if node_name not in self._shard_of_node:
            raise KeyError(f"no shard owns node {node_name!r}")
        return self._shard_of_node[node_name]

    # ------------------------------------------------------------------ #
    # Elastic membership (kept in lockstep with the federated scheduler)
    # ------------------------------------------------------------------ #
    def add_shard(self, shard: ClusterShard) -> None:
        """Union in a new shard's nodes (elastic scale-up).

        Args:
            shard: the joining shard; node names must be federation-unique.
        """
        for node in shard.cluster:
            self.add_node(node)
            self._shard_of_node[node.name] = shard.name

    def remove_shard(self, shard: ClusterShard) -> None:
        """Drop a drained shard's nodes from the union (elastic scale-down).

        Args:
            shard: the departing shard; all of its nodes must be idle
                (the drain hook migrates running tasks away first).
        """
        for node in list(shard.cluster):
            self.remove_node(node.name)
            del self._shard_of_node[node.name]

    def attach_node(self, shard_name: str, node) -> None:
        """Index a node grown into a member shard.

        Args:
            shard_name: the shard the node was grown into.
            node: the new :class:`~repro.scheduler.cluster.ClusterNode`.
        """
        self.add_node(node)
        self._shard_of_node[node.name] = shard_name

    def detach_node(self, node_name: str) -> None:
        """Drop a node shrunk out of a member shard.

        Args:
            node_name: the departing (idle) node.
        """
        self.remove_node(node_name)
        del self._shard_of_node[node_name]


class FederatedScheduler:
    """Two-level scheduler: shard selection, then in-shard HEATS placement."""

    name = "federated_heats"
    supports_rescheduling = True

    def __init__(
        self,
        shards: Sequence[ClusterShard],
        config: Optional[FederationConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        """Wire the shards into one scheduling domain.

        Args:
            shards: member shards; names and node names must be unique
                across the federation (each shard must be an independent
                cluster -- shared node objects across shards would corrupt
                both capacity indices).
            config: federation tunables; defaults to ``FederationConfig()``.
            metrics: optional telemetry bus; when given, the routing hot
                path emits O(1) signals (placements, unplaced attempts,
                queueing delay, per-tenant demand) the autoscale
                controller subscribes to.
        """
        if not shards:
            raise ValueError("a federation needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        self.shards: List[ClusterShard] = list(shards)
        self._by_name: Dict[str, ClusterShard] = {s.name: s for s in self.shards}
        self.config = config if config is not None else FederationConfig()
        self._node_shard: Dict[str, str] = {}
        for shard in self.shards:
            for node in shard.cluster:
                if node.name in self._node_shard:
                    raise ValueError(
                        f"node {node.name!r} appears in more than one shard"
                    )
                self._node_shard[node.name] = shard.name
        self._affinity: Dict[str, str] = {}
        self._tenant_regions: Dict[str, str] = {}
        self._draining: Set[str] = set()
        #: elastic control loop attached via Autoscaler; consulted at the
        #: top of every rescheduling pass when present.
        self.autoscaler = None
        #: host-time phase profiler attached via
        #: :meth:`attach_profiler`; the routing hot path records a
        #: ``routing`` phase on it (cached-boolean guarded).
        self.profiler = None
        self._profile = False
        self.federation_stats = FederationStats()
        self._perf_weight_total = self.config.cpu_weight + self.config.memory_weight
        self._energy_weight_total = self.config.thermal_weight + self.config.price_weight
        self._price_norm: Dict[str, float] = {}
        self._rebuild_price_norm()
        # Hot-path instruments are bound once here; recording is a float
        # add / ring write per event, never a registry lookup.
        self.metrics = metrics
        if metrics is not None:
            self._m_place_calls = metrics.counter("router.place_calls")
            self._m_placements = metrics.counter("router.placements")
            self._m_unplaced = metrics.counter("router.unplaced")
            self._m_queue_delay = metrics.histogram("router.queue_delay_s")
            self._m_demand: Dict[str, object] = {}
        else:
            self._m_place_calls = None
            self._m_placements = None
            self._m_unplaced = None
            self._m_queue_delay = None
            self._m_demand = {}

    def _rebuild_price_norm(self) -> None:
        """Re-normalise regional prices; runs on every membership change.

        Prices are normalised against the *current* member shards, so the
        shard score stays in [0, 1] as shards come and go.
        """
        max_price = max(s.profile.energy_price_per_kwh for s in self.shards)
        self._price_norm = {
            s.name: s.profile.energy_price_per_kwh / max_price for s in self.shards
        }

    # ------------------------------------------------------------------ #
    # Elastic shard membership
    # ------------------------------------------------------------------ #
    def add_shard(self, shard: ClusterShard) -> None:
        """Admit a new shard into the scheduling domain (scale-up).

        Args:
            shard: the joining shard; its name and node names must be
                unique across the federation.
        """
        if shard.name in self._by_name:
            raise ValueError(f"shard {shard.name!r} is already a member")
        for node in shard.cluster:
            if node.name in self._node_shard:
                raise ValueError(f"node {node.name!r} appears in more than one shard")
        self.shards.append(shard)
        self._by_name[shard.name] = shard
        for node in shard.cluster:
            self._node_shard[node.name] = shard.name
        self._rebuild_price_norm()

    def remove_shard(self, name: str) -> ClusterShard:
        """Retire a fully drained shard (scale-down, last step).

        The drain protocol is: :meth:`begin_drain` (stop routing to the
        shard, rebalance pinned tenants away), let rescheduling passes
        migrate its running tasks out, then remove once empty.  Removing a
        shard that still hosts tasks is refused -- that is exactly the
        request-loss bug the drain hook exists to prevent.

        Args:
            name: the shard to retire.

        Returns:
            The detached shard.
        """
        shard = self.shard(name)
        if len(self.shards) == 1:
            raise ValueError("a federation needs at least one shard")
        if shard.has_running_tasks():
            raise ValueError(
                f"shard {name!r} still hosts running tasks; drain it first"
            )
        self.shards.remove(shard)
        del self._by_name[name]
        for node in shard.cluster:
            del self._node_shard[node.name]
        self._draining.discard(name)
        # Any pin still pointing at the removed shard would silently count
        # an affinity miss per request forever; drop the stale pins.
        for tenant, pinned in list(self._affinity.items()):
            if pinned == name:
                del self._affinity[tenant]
        self._rebuild_price_norm()
        return shard

    def begin_drain(self, name: str) -> None:
        """Mark a shard draining: no new placements, pins rebalanced away.

        Queued (not yet placed) requests stop routing to the shard from
        this call on; running placements are migrated out by the following
        rescheduling passes, and :meth:`remove_shard` completes the
        scale-down once the shard is empty.

        Args:
            name: the shard to drain.
        """
        shard = self.shard(name)
        active = [s for s in self.shards if s.name not in self._draining]
        if len(active) <= 1 and shard.name in {s.name for s in active}:
            raise ValueError("cannot drain the last active shard")
        self._draining.add(name)
        self.rebalance_affinity(name)

    def cancel_drain(self, name: str) -> None:
        """Un-retire a draining shard (scale-up pressure mid-drain).

        The shard immediately rejoins the routing order; tenants re-pin to
        it organically as their traffic lands there again.

        Args:
            name: the draining shard to reinstate.
        """
        if name not in self._draining:
            raise ValueError(f"shard {name!r} is not draining")
        self._draining.discard(name)

    def is_draining(self, name: str) -> bool:
        """Whether a shard is currently draining.

        Args:
            name: shard name.

        Returns:
            True between :meth:`begin_drain` and :meth:`remove_shard`.
        """
        return name in self._draining

    @property
    def draining_shards(self) -> List[str]:
        """Names of shards currently draining."""
        return sorted(self._draining)

    def rebalance_affinity(self, from_shard: str) -> int:
        """Re-pin tenants away from a shard about to be retired.

        Each affected tenant moves to the best-scoring non-draining shard
        (neutral energy weight: no request is in hand), so its next
        request routes straight to the new home instead of paying an
        affinity miss against a vanishing pin.

        Args:
            from_shard: the shard whose pins are being evacuated.

        Returns:
            Number of tenants re-pinned.
        """
        targets = [
            shard
            for shard in self.shards
            if shard.name != from_shard and shard.name not in self._draining
        ]
        # Re-pinning does not change any shard's score, so one ranking
        # serves every evacuated tenant.
        best = (
            min(targets, key=lambda shard: (self._shard_score(shard, 0.5), shard.name))
            if targets
            else None
        )
        moved = 0
        for tenant, pinned in list(self._affinity.items()):
            if pinned != from_shard:
                continue
            if best is not None:
                self._affinity[tenant] = best.name
            else:
                del self._affinity[tenant]
            moved += 1
        self.federation_stats.affinity_rebalanced += moved
        return moved

    # ------------------------------------------------------------------ #
    # Tenant affinity
    # ------------------------------------------------------------------ #
    def register_tenant_region(self, tenant: str, region: str) -> None:
        """Seed a tenant's shard affinity from a preferred energy region.

        Args:
            tenant: tenant name as it appears on task requests.
            region: region name matched against the shard profiles; the
                first matching shard becomes the tenant's initial pin.
        """
        self._tenant_regions[tenant] = region

    def affinity_shard(self, tenant: str) -> Optional[str]:
        """The shard a tenant is currently pinned to, if any.

        Args:
            tenant: tenant name.

        Returns:
            The pinned shard's name, or None when the tenant is unpinned.
        """
        return self._affinity.get(tenant)

    def _region_shard(self, tenant: str) -> Optional[ClusterShard]:
        region = self._tenant_regions.get(tenant)
        if region is None:
            return None
        for shard in self.shards:
            if shard.profile.region == region:
                return shard
        return None

    def _shard_score(self, shard: ClusterShard, energy_weight: float) -> float:
        """The aggregate shard score without building score objects.

        Same formula as :func:`~repro.federation.policy.score_shards`, but
        kept allocation-free (it runs once per shard per placement) and
        with prices normalised against *all* member shards -- every
        routing decision (placement and migration) therefore scores a
        shard identically for identical cluster state, regardless of
        which subset of shards is under consideration.
        """
        config = self.config
        capacity = shard.cluster.capacity()
        perf_pressure = (
            config.cpu_weight * (1.0 - capacity.free_core_fraction)
            + config.memory_weight * (1.0 - capacity.free_memory_fraction)
        ) / self._perf_weight_total
        energy_pressure = (
            config.thermal_weight * (1.0 - capacity.thermal_headroom)
            + config.price_weight * self._price_norm[shard.name]
        ) / self._energy_weight_total
        return (1.0 - energy_weight) * perf_pressure + energy_weight * energy_pressure

    def _routing_order(self, request: TaskRequest) -> Tuple[List[ClusterShard], Optional[str]]:
        """Shards to try in order, plus the tenant's pinned shard name.

        Draining shards are excluded outright: anything not yet placed
        (queued requests included) must land on a shard that will still
        exist when the task finishes.
        """
        weight = request.energy_weight
        candidates = (
            [s for s in self.shards if s.name not in self._draining]
            if self._draining
            else self.shards
        )
        order = sorted(
            candidates, key=lambda shard: (self._shard_score(shard, weight), shard.name)
        )
        pinned: Optional[str] = None
        if request.tenant is not None and self.config.sticky_affinity:
            pinned = self._affinity.get(request.tenant)
            preferred: Optional[ClusterShard] = None
            if pinned is not None and pinned not in self._draining:
                shard = self._by_name[pinned]
                if not shard.is_saturated(self.config.saturation_free_core_fraction):
                    preferred = shard
            elif pinned is None:
                seeded = self._region_shard(request.tenant)
                if (
                    seeded is not None
                    and seeded.name not in self._draining
                    and not seeded.is_saturated(
                        self.config.saturation_free_core_fraction
                    )
                ):
                    preferred = seeded
                    self.federation_stats.region_seeded += 1
            if preferred is not None:
                order = [preferred] + [s for s in order if s.name != preferred.name]
        return order, pinned

    # ------------------------------------------------------------------ #
    # SchedulerProtocol: placement
    # ------------------------------------------------------------------ #
    def attach_profiler(self, profiler) -> None:
        """Attach a host-time phase profiler to the routing hot path.

        Args:
            profiler: a :class:`~repro.telemetry.profile.PhaseProfiler`;
                when enabled, every ``place`` call records a ``routing``
                phase (nested under whatever phase the simulator has
                open).  Disabled or None detaches.
        """
        self.profiler = profiler
        self._profile = profiler is not None and profiler.enabled

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        """Pick a node for a request: shard first, then HEATS inside it.

        Args:
            request: the task to place.
            cluster: the federated (union) cluster the simulator drives;
                placement itself descends into the shard clusters.
            time_s: simulation time of the placement attempt.

        Returns:
            The chosen node name, or None when no shard can host the
            request right now.
        """
        if self._profile:
            with self.profiler.phase("routing"):
                return self._place(request, cluster, time_s)
        return self._place(request, cluster, time_s)

    def _place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        if self._m_place_calls is not None:
            self._m_place_calls.inc()
            if request.tenant is not None:
                demand = self._m_demand.get(request.tenant)
                if demand is None:
                    demand = self.metrics.counter(f"router.demand.{request.tenant}")
                    self._m_demand[request.tenant] = demand
                demand.inc()
        order, pinned = self._routing_order(request)
        for shard in order:
            # Aggregate pre-check only: a shard with fewer free cores (or
            # less free memory) in total than requested can never host, so
            # skip it without touching its node index.
            capacity = shard.cluster.capacity()
            if capacity.free_cores < request.cores or (
                capacity.free_memory_gib < request.memory_gib
            ):
                continue
            node = shard.scheduler.place(request, shard.cluster, time_s)
            if node is None:
                continue
            stats = self.federation_stats
            stats.placements_by_shard[shard.name] = (
                stats.placements_by_shard.get(shard.name, 0) + 1
            )
            if request.tenant is not None:
                if pinned is not None:
                    if shard.name == pinned:
                        stats.affinity_hits += 1
                    else:
                        stats.affinity_misses += 1
                # (Re-)pin so the tenant's next request follows its traffic.
                self._affinity[request.tenant] = shard.name
            if self._m_placements is not None:
                self._m_placements.inc()
                self._m_queue_delay.record(max(0.0, time_s - request.arrival_s))
            return node
        self.federation_stats.unplaced_requests += 1
        if self._m_unplaced is not None:
            self._m_unplaced.inc()
        return None

    # ------------------------------------------------------------------ #
    # SchedulerProtocol: rescheduling / cross-shard migration
    # ------------------------------------------------------------------ #
    def reschedule(
        self,
        running: Sequence[Placement],
        cluster: Cluster,
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Elastic control, drain evacuation, then the usual rebalancing.

        Four stages per pass:

        1. when an autoscaler is attached, it observes the telemetry
           signals and may mutate the topology (add shards, begin drains,
           grow/shrink nodes, retire empty draining shards);
        2. each *non-draining* shard's own scheduler proposes its usual
           in-shard migrations;
        3. every draining shard evacuates up to
           ``drain_migrations_per_cycle`` running tasks into non-draining
           shards (the drain hook: a shard is only removable once this
           emptied it, so scale-down can never lose a placed request);
        4. every saturated shard drains up to ``max_migrations_per_cycle``
           tasks into shards with migration headroom.

        Args:
            running: all running placements across the federation.
            cluster: the federated cluster (unused; shards are authoritative).
            time_s: simulation time of the rescheduling pass.

        Returns:
            (task_id, target_node) pairs; target nodes may live in a
            different shard than the task's current host.
        """
        if self.autoscaler is not None:
            self.autoscaler.control(time_s, running)
        decisions: List[Tuple[str, str]] = []
        moved: Set[str] = set()
        by_shard: Dict[str, List[Placement]] = {}
        for placement in running:
            shard_name = self._node_shard.get(placement.node)
            if shard_name is not None:
                by_shard.setdefault(shard_name, []).append(placement)

        for shard in self.shards:
            if shard.name in self._draining:
                # In-shard moves on a vanishing shard are pure churn; the
                # drain stage below moves these tasks out instead.
                continue
            group = by_shard.get(shard.name, [])
            if not group:
                continue
            for task_id, target in shard.scheduler.reschedule(
                group, shard.cluster, time_s
            ):
                decisions.append((task_id, target))
                moved.add(task_id)

        # Planned-load overlay: target selection does not reserve anything,
        # so without it every drain decision in one pass would pick the
        # same (currently emptiest) node and all but the first would be
        # dropped by the placement engine -- overcounting the stats and
        # under-draining the shard.
        planned: Dict[str, Tuple[int, float]] = {}

        def fits_with_planned(node, cores: int, memory_gib: float) -> bool:
            planned_cores, planned_memory = planned.get(node.name, (0, 0.0))
            return node.available.fits(cores + planned_cores, memory_gib + planned_memory)

        def evacuate(shard: ClusterShard, budget: int, draining: bool) -> None:
            """Move tasks off a shard into the best other shards."""
            candidates = [
                placement
                for placement in by_shard.get(shard.name, [])
                if placement.request.task_id not in moved
            ]
            if not candidates:
                return
            # Cheapest-to-move first: migration downtime grows with the
            # task's memory footprint.
            candidates.sort(key=lambda p: (p.request.memory_gib, p.request.task_id))
            for placement in candidates:
                if budget <= 0:
                    break
                request = placement.request
                targets = sorted(
                    (
                        other
                        for other in self.shards
                        if other.name != shard.name
                        and other.name not in self._draining
                        and (
                            # A drain evacuates wherever there is room; the
                            # saturation rebalancer additionally demands
                            # real headroom so it does not just move the
                            # hot spot around.
                            draining
                            or other.capacity().free_core_fraction
                            >= self.config.migration_headroom_fraction
                        )
                    ),
                    # Rank with the same federation-wide score placement
                    # uses, so migration and placement agree on shard
                    # preference for identical cluster state.
                    key=lambda other: (
                        self._shard_score(other, request.energy_weight),
                        other.name,
                    ),
                )
                if not targets:
                    break
                for target_shard in targets:
                    nodes = [
                        node
                        for node in target_shard.cluster.feasible_nodes(
                            request.cores, request.memory_gib
                        )
                        if fits_with_planned(node, request.cores, request.memory_gib)
                    ]
                    scored = target_shard.scheduler.score_candidates(request, nodes)
                    if not scored:
                        continue
                    node_name = scored[0].node
                    planned_cores, planned_memory = planned.get(node_name, (0, 0.0))
                    planned[node_name] = (
                        planned_cores + request.cores,
                        planned_memory + request.memory_gib,
                    )
                    decisions.append((request.task_id, node_name))
                    moved.add(request.task_id)
                    if draining:
                        self.federation_stats.drain_migrations += 1
                    else:
                        self.federation_stats.cross_shard_migrations += 1
                    budget -= 1
                    break

        for name in sorted(self._draining):
            evacuate(self._by_name[name], self.config.drain_migrations_per_cycle, True)

        for shard in self.shards:
            if shard.name in self._draining:
                continue
            if not shard.is_saturated(self.config.saturation_free_core_fraction):
                continue
            evacuate(shard, self.config.max_migrations_per_cycle, False)
        return decisions

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def shard(self, name: str) -> ClusterShard:
        """Look up a member shard by name.

        Args:
            name: shard name.

        Returns:
            The shard.
        """
        if name not in self._by_name:
            raise KeyError(f"no shard named {name!r}")
        return self._by_name[name]

    def shard_of_node(self, node_name: str) -> str:
        """Name of the shard owning a node.

        Args:
            node_name: node of any member shard.

        Returns:
            The owning shard's name.
        """
        if node_name not in self._node_shard:
            raise KeyError(f"no shard owns node {node_name!r}")
        return self._node_shard[node_name]


class Federation:
    """A built federation: shards, union cluster, scheduler, serving entry.

    Like a :class:`~repro.serving.loop.ServingLoop`, a federation carries
    mutable cluster state; build a fresh one per serving run.
    """

    def __init__(
        self,
        shards: Sequence[ClusterShard],
        config: Optional[FederationConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        """Assemble a federation from pre-built shards.

        Args:
            shards: member shards with federation-unique node names.
            config: federation tunables; defaults to ``FederationConfig()``.
            metrics: optional telemetry bus shared by the router (and, via
                :meth:`serve`, the gateway and batcher hot paths).
        """
        self.metrics = metrics
        self.scheduler = FederatedScheduler(shards, config=config, metrics=metrics)
        self.cluster = FederatedCluster(self.scheduler.shards)
        self._served = False
        # Build parameters for shards added later by the autoscaler; the
        # defaults match ClusterShard.build and are overridden by build().
        self.seed_policy = SeedPolicy()
        self.default_shard_scale = 1
        self.default_heats_config: Optional[HeatsConfig] = None
        self.default_use_score_cache = True
        self.default_cache_capacity: Optional[int] = None
        self.profile_catalogue: Tuple[ShardProfile, ...] = DEFAULT_SHARD_PROFILES
        self.next_shard_index = len(self.scheduler.shards)

    @property
    def base_seed(self) -> int:
        """The seed policy's base (kept for pre-SeedPolicy callers)."""
        return self.seed_policy.base

    @property
    def shards(self) -> List[ClusterShard]:
        """The current member shards (the scheduler's list is authoritative)."""
        return self.scheduler.shards

    @classmethod
    def build(
        cls,
        num_shards: int = 2,
        shard_scale: int = 1,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional[FederationConfig] = None,
        use_score_cache: bool = True,
        seed: int = 7,
        profiles: Optional[Sequence[ShardProfile]] = None,
        metrics: Optional["MetricsRegistry"] = None,
        seed_policy: Optional[SeedPolicy] = None,
        cache_capacity: Optional[int] = None,
    ) -> "Federation":
        """Build a federation of HEATS testbed shards.

        Every shard gets an independent profiling seed (shard ``i``
        profiles with ``seed_policy.shard_seed(i)``) and its own copy of
        the scheduler config, so no RNG stream, config object, or cache
        is ever shared between shards.

        Args:
            num_shards: number of member shards.
            shard_scale: ``heats_testbed`` scale per shard (4 * scale nodes
                each).
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection / migration tunables.
            use_score_cache: attach a per-shard prediction-score cache.
            seed: federation-level base seed; ignored when ``seed_policy``
                is given, otherwise wrapped as ``SeedPolicy(base=seed)``.
            profiles: regional profiles; defaults to cycling
                ``DEFAULT_SHARD_PROFILES``.
            metrics: optional telemetry bus for the routing hot path.
            seed_policy: the deployment-wide seed-derivation rules.
            cache_capacity: LRU bound of each shard's score cache; None
                keeps the cache default.

        Returns:
            A ready-to-serve :class:`Federation`.
        """
        if num_shards <= 0:
            raise ValueError("a federation needs at least one shard")
        if shard_scale <= 0:
            raise ValueError("shard scale must be positive")
        policy = seed_policy if seed_policy is not None else SeedPolicy(base=seed)
        catalogue = tuple(profiles) if profiles else DEFAULT_SHARD_PROFILES
        profile_cycle = itertools.cycle(catalogue)
        shards = [
            ClusterShard.build(
                index,
                next(profile_cycle),
                scale=shard_scale,
                heats_config=heats_config,
                use_score_cache=use_score_cache,
                metrics=metrics,
                seed_policy=policy,
                cache_capacity=cache_capacity,
            )
            for index in range(num_shards)
        ]
        federation = cls(shards, config=federation_config, metrics=metrics)
        federation.seed_policy = policy
        federation.default_shard_scale = shard_scale
        federation.default_heats_config = heats_config
        federation.default_use_score_cache = use_score_cache
        federation.default_cache_capacity = cache_capacity
        federation.profile_catalogue = catalogue
        return federation

    @property
    def stats(self) -> FederationStats:
        """The scheduler's routing telemetry."""
        return self.scheduler.federation_stats

    # ------------------------------------------------------------------ #
    # Elastic topology (the autoscaler's actuation surface)
    # ------------------------------------------------------------------ #
    @property
    def total_nodes(self) -> int:
        """Current node count across all member shards."""
        return len(self.cluster)

    def add_shard(self, shard: Optional[ClusterShard] = None) -> ClusterShard:
        """Admit a shard, keeping scheduler and union cluster in lockstep.

        Args:
            shard: a pre-built shard; when None, a new one is built with
                the federation's build parameters (next profile in the
                catalogue, derived seed, config copy).

        Returns:
            The admitted shard.
        """
        if shard is None:
            profile = self.profile_catalogue[
                self.next_shard_index % len(self.profile_catalogue)
            ]
            shard = ClusterShard.build(
                self.next_shard_index,
                profile,
                scale=self.default_shard_scale,
                heats_config=self.default_heats_config,
                use_score_cache=self.default_use_score_cache,
                metrics=self.metrics,
                seed_policy=self.seed_policy,
                cache_capacity=self.default_cache_capacity,
            )
        self.scheduler.add_shard(shard)
        self.cluster.add_shard(shard)
        self.next_shard_index += 1
        return shard

    def begin_drain(self, shard_name: str) -> None:
        """Start retiring a shard: reroute, rebalance pins, evacuate.

        Args:
            shard_name: the shard to drain.
        """
        self.scheduler.begin_drain(shard_name)

    def cancel_drain(self, shard_name: str) -> None:
        """Reinstate a draining shard.

        Args:
            shard_name: the draining shard to bring back into routing.
        """
        self.scheduler.cancel_drain(shard_name)

    def finalize_drain(self, shard_name: str) -> Optional[ClusterShard]:
        """Remove a draining shard once it is empty.

        Args:
            shard_name: the draining shard.

        Returns:
            The removed shard, or None while it still hosts tasks (call
            again after further rescheduling passes).
        """
        shard = self.scheduler.shard(shard_name)
        if shard.has_running_tasks():
            return None
        removed = self.scheduler.remove_shard(shard_name)
        self.cluster.remove_shard(removed)
        return removed

    def grow_node(self, shard_name: str, model: str) -> str:
        """Grow one node inside a shard (profiled before it is placeable).

        Args:
            shard_name: the shard to grow.
            model: microserver catalogue model for the new node.

        Returns:
            The new node's name.
        """
        node = self.scheduler.shard(shard_name).grow_node(model)
        self.cluster.attach_node(shard_name, node)
        return node.name

    def shrink_node(self, shard_name: str, node_name: Optional[str] = None) -> Optional[str]:
        """Remove one idle node from a shard.

        Args:
            shard_name: the shard to shrink.
            node_name: the node to remove; when None, the last fully idle
                node is chosen via the shard's capacity index.

        Returns:
            The removed node's name, or None when the shard has no idle
            node (or only one node) to give up.
        """
        shard = self.scheduler.shard(shard_name)
        if node_name is None:
            idle = shard.cluster.idle_nodes()
            if not idle or len(shard.cluster) <= 1:
                return None
            # Latest-added first: elastic growth is undone before the
            # shard's original build population is touched.
            node_name = idle[-1].name
        # Shard first: it validates membership, idleness, and the
        # one-node floor before anything is mutated; only then does the
        # union view (which cannot fail on a node the shard just released)
        # drop it, so an invalid request never splits the two indices.
        shard.release_node(node_name)
        self.cluster.detach_node(node_name)
        return node_name

    def reprice_shard(self, shard_name: str, energy_price_per_kwh: float) -> float:
        """Change one shard's regional energy price mid-run.

        Models a regional price event (a spike or its restore): the
        shard's frozen profile is replaced and the scheduler's price
        normalisation rebuilt, so routing immediately reflects the new
        price.  The chaos layer's ``price_spike`` injection drives this.

        Args:
            shard_name: the shard whose region repriced.
            energy_price_per_kwh: the new price (must be positive).

        Returns:
            The previous price, for a later restore.
        """
        if energy_price_per_kwh <= 0:
            raise ValueError("energy price must be positive")
        shard = self.scheduler.shard(shard_name)
        previous = shard.profile.energy_price_per_kwh
        shard.profile = replace(
            shard.profile, energy_price_per_kwh=energy_price_per_kwh
        )
        self.scheduler._rebuild_price_norm()
        return previous

    def shard_scores(self, energy_weight: float = 0.5) -> List[ShardScore]:
        """Current shard ranking for a given energy weight.

        Args:
            energy_weight: energy/performance trade-off in [0, 1].

        Returns:
            Shard scores sorted best first.
        """
        return score_shards(self.shards, energy_weight, self.scheduler.config)

    def serve(self, workload, batch_policy=None):
        """Serve a multi-tenant workload through the federation (one-shot).

        Builds the gateway over the workload's tenants (registering their
        preferred regions as affinity seeds) and runs the serving loop
        with the federated cluster and scheduler as the backend.  When the
        federation carries a telemetry bus, the gateway and batcher hot
        paths record into it, and when an autoscaler is attached to the
        scheduler the report additionally carries its
        :class:`~repro.autoscale.controller.AutoscaleReport`.

        This is the one-shot entry: it refuses a second call because the
        shard cluster state carries the previous run.  Deployment
        sessions (:class:`repro.api.Deployment`) use
        :meth:`run_workload`, which verifies the cluster drained back to
        idle and serves again against the warm state.

        Args:
            workload: a :class:`~repro.serving.loop.ServingWorkload`.
            batch_policy: optional
                :class:`~repro.serving.batching.BatchPolicy` override.

        Returns:
            The :class:`~repro.serving.loop.ServingReport`, with
            ``federation_stats`` populated.
        """
        if self._served:
            raise RuntimeError(
                "a Federation can only serve once; shard cluster state "
                "carries the previous run -- build a fresh federation, or "
                "serve through a Deployment session (repro.api) to reuse "
                "warm state"
            )
        self._served = True
        return self._run_serving(workload, batch_policy, 0.5, None, None)

    def run_workload(
        self,
        workload,
        batch_policy=None,
        flush_tick_s: float = 0.5,
        tracer=None,
        profiler=None,
    ):
        """Serve a workload against warm state (repeatable session entry).

        The profiled prediction models, score caches, tenant affinity
        pins, and any elastically grown topology all stay warm between
        calls -- only the per-run serving state (gateway, batcher, SLA
        tracker, routing stats) is rebuilt.  The previous run must have
        drained completely: every completed simulation releases all of
        its reservations, so a non-idle cluster means the caller is
        interleaving runs on shared state.

        Args:
            workload: a :class:`~repro.serving.loop.ServingWorkload`.
            batch_policy: optional
                :class:`~repro.serving.batching.BatchPolicy` override.
            flush_tick_s: gateway-drain / batch-flush cadence.
            tracer: optional
                :class:`~repro.telemetry.trace.Tracer`; when enabled the
                run records request-scoped spans (admission, batching,
                placement with shard annotations, migration, completion)
                surfaced on ``ServingReport.trace_spans``.
            profiler: optional
                :class:`~repro.telemetry.profile.PhaseProfiler`; when
                enabled the run records a host-time phase breakdown
                (ingest / simulate / rollup, with routing and autoscale
                nested inside).

        Returns:
            The :class:`~repro.serving.loop.ServingReport`, with
            ``federation_stats`` holding *this run's* routing telemetry.
        """
        capacity = self.cluster.capacity()
        if capacity.free_cores != capacity.total_cores:
            raise RuntimeError(
                "the federation still hosts running tasks from a previous "
                "run; serve runs back-to-back, not interleaved"
            )
        self._served = True
        # Routing telemetry is per-run in a session: the warm caches and
        # pins carry over, the counters must not.
        self.scheduler.federation_stats = FederationStats()
        return self._run_serving(
            workload, batch_policy, flush_tick_s, tracer, profiler
        )

    def _run_serving(
        self,
        workload,
        batch_policy,
        flush_tick_s: float,
        tracer,
        profiler,
    ):
        """Shared serving body for :meth:`serve` and :meth:`run_workload`."""
        from repro.serving.gateway import RequestGateway
        from repro.serving.loop import ServingLoop

        gateway = RequestGateway(workload.tenants, metrics=self.metrics)
        for tenant in workload.tenants:
            if tenant.region is not None:
                self.scheduler.register_tenant_region(tenant.name, tenant.region)
        loop = ServingLoop(
            self.cluster,
            self.scheduler,
            gateway,
            batch_policy=batch_policy,
            flush_tick_s=flush_tick_s,
            metrics=self.metrics,
            tracer=tracer,
            profiler=profiler,
        )
        return loop.run(workload.requests)
