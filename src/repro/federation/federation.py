"""Federated multi-cluster scheduling over sharded HEATS deployments.

The federation is the layer the ROADMAP's "millions of users" north star
needs above a single cluster: N independently operated HEATS shards behind
one scheduler.  Placement is two-level -- a cheap shard pick from O(1)
capacity aggregates (free CPU/memory, thermal headroom, regional energy
price), then the existing node-level HEATS scoring *inside* the chosen
shard only -- so per-request placement work shrinks as the fleet is cut
into more shards.  Tenant affinity keeps each tenant's traffic on one
shard (re-routing only when it saturates) so the per-shard prediction
score caches stay hot, and a cross-shard rescheduling pass drains
saturated shards into shards with headroom.

:class:`FederatedScheduler` implements the same ``SchedulerProtocol`` the
discrete-event :class:`~repro.scheduler.simulation.ClusterSimulator`
drives, over a :class:`FederatedCluster` that unions the shard clusters
(sharing node objects, so both views stay incrementally indexed).  The
whole simulator machinery -- queueing, completions, migration accounting,
energy -- therefore works unchanged on a federation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.federation.policy import (
    DEFAULT_SHARD_PROFILES,
    FederationConfig,
    ShardProfile,
    ShardScore,
    score_shards,
)
from repro.federation.shard import ClusterShard
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsConfig
from repro.scheduler.placement import Placement
from repro.scheduler.workload import TaskRequest


@dataclass
class FederationStats:
    """Routing telemetry accumulated by a federated scheduler."""

    placements_by_shard: Dict[str, int] = field(default_factory=dict)
    affinity_hits: int = 0
    affinity_misses: int = 0
    region_seeded: int = 0
    cross_shard_migrations: int = 0
    unplaced_requests: int = 0

    @property
    def placements(self) -> int:
        """Total number of successful placements across all shards."""
        return sum(self.placements_by_shard.values())

    @property
    def affinity_hit_rate(self) -> float:
        """Fraction of pinned-tenant placements that stayed on the pin."""
        attempts = self.affinity_hits + self.affinity_misses
        return self.affinity_hits / attempts if attempts else 0.0

    def summary(self) -> Dict[str, object]:
        """A compact dict rendering of the routing telemetry.

        Returns:
            Placement counts per shard plus affinity and migration totals.
        """
        return {
            "placements_by_shard": dict(self.placements_by_shard),
            "affinity_hit_rate": round(self.affinity_hit_rate, 4),
            "affinity_hits": self.affinity_hits,
            "affinity_misses": self.affinity_misses,
            "region_seeded": self.region_seeded,
            "cross_shard_migrations": self.cross_shard_migrations,
            "unplaced_requests": self.unplaced_requests,
        }


class FederatedCluster(Cluster):
    """The union view of all shard clusters.

    Shares the shard clusters' node objects, so reservations made through
    either view keep both capacity indices up to date (nodes notify every
    subscribed cluster).  The placement engine and simulator operate on
    this view; the shard schedulers operate on their shard's view.  The
    union index costs one extra listener update per reserve/release; it is
    kept (rather than lazily skipped) so the union view stays a fully
    functional ``Cluster`` for any consumer -- stale aggregates would be a
    silent trap.
    """

    def __init__(self, shards: Sequence[ClusterShard]) -> None:
        if not shards:
            raise ValueError("a federation needs at least one shard")
        super().__init__(
            node for shard in shards for node in shard.cluster
        )
        self._shard_of_node: Dict[str, str] = {
            node.name: shard.name for shard in shards for node in shard.cluster
        }

    def shard_of(self, node_name: str) -> str:
        """Name of the shard that owns a node.

        Args:
            node_name: a node of any member shard.

        Returns:
            The owning shard's name.
        """
        if node_name not in self._shard_of_node:
            raise KeyError(f"no shard owns node {node_name!r}")
        return self._shard_of_node[node_name]


class FederatedScheduler:
    """Two-level scheduler: shard selection, then in-shard HEATS placement."""

    name = "federated_heats"
    supports_rescheduling = True

    def __init__(
        self,
        shards: Sequence[ClusterShard],
        config: Optional[FederationConfig] = None,
    ) -> None:
        """Wire the shards into one scheduling domain.

        Args:
            shards: member shards; names and node names must be unique
                across the federation (each shard must be an independent
                cluster -- shared node objects across shards would corrupt
                both capacity indices).
            config: federation tunables; defaults to ``FederationConfig()``.
        """
        if not shards:
            raise ValueError("a federation needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        self.shards: List[ClusterShard] = list(shards)
        self._by_name: Dict[str, ClusterShard] = {s.name: s for s in self.shards}
        self.config = config if config is not None else FederationConfig()
        self._node_shard: Dict[str, str] = {}
        for shard in self.shards:
            for node in shard.cluster:
                if node.name in self._node_shard:
                    raise ValueError(
                        f"node {node.name!r} appears in more than one shard"
                    )
                self._node_shard[node.name] = shard.name
        self._affinity: Dict[str, str] = {}
        self._tenant_regions: Dict[str, str] = {}
        self.federation_stats = FederationStats()
        # Hot-path constants: profiles are static, so normalise prices and
        # weight sums once instead of per placement.
        max_price = max(s.profile.energy_price_per_kwh for s in self.shards)
        self._price_norm: Dict[str, float] = {
            s.name: s.profile.energy_price_per_kwh / max_price for s in self.shards
        }
        self._perf_weight_total = self.config.cpu_weight + self.config.memory_weight
        self._energy_weight_total = self.config.thermal_weight + self.config.price_weight

    # ------------------------------------------------------------------ #
    # Tenant affinity
    # ------------------------------------------------------------------ #
    def register_tenant_region(self, tenant: str, region: str) -> None:
        """Seed a tenant's shard affinity from a preferred energy region.

        Args:
            tenant: tenant name as it appears on task requests.
            region: region name matched against the shard profiles; the
                first matching shard becomes the tenant's initial pin.
        """
        self._tenant_regions[tenant] = region

    def affinity_shard(self, tenant: str) -> Optional[str]:
        """The shard a tenant is currently pinned to, if any.

        Args:
            tenant: tenant name.

        Returns:
            The pinned shard's name, or None when the tenant is unpinned.
        """
        return self._affinity.get(tenant)

    def _region_shard(self, tenant: str) -> Optional[ClusterShard]:
        region = self._tenant_regions.get(tenant)
        if region is None:
            return None
        for shard in self.shards:
            if shard.profile.region == region:
                return shard
        return None

    def _shard_score(self, shard: ClusterShard, energy_weight: float) -> float:
        """The aggregate shard score without building score objects.

        Same formula as :func:`~repro.federation.policy.score_shards`, but
        kept allocation-free (it runs once per shard per placement) and
        with prices normalised against *all* member shards -- every
        routing decision (placement and migration) therefore scores a
        shard identically for identical cluster state, regardless of
        which subset of shards is under consideration.
        """
        config = self.config
        capacity = shard.cluster.capacity()
        perf_pressure = (
            config.cpu_weight * (1.0 - capacity.free_core_fraction)
            + config.memory_weight * (1.0 - capacity.free_memory_fraction)
        ) / self._perf_weight_total
        energy_pressure = (
            config.thermal_weight * (1.0 - capacity.thermal_headroom)
            + config.price_weight * self._price_norm[shard.name]
        ) / self._energy_weight_total
        return (1.0 - energy_weight) * perf_pressure + energy_weight * energy_pressure

    def _routing_order(self, request: TaskRequest) -> Tuple[List[ClusterShard], Optional[str]]:
        """Shards to try in order, plus the tenant's pinned shard name."""
        weight = request.energy_weight
        order = sorted(
            self.shards, key=lambda shard: (self._shard_score(shard, weight), shard.name)
        )
        pinned: Optional[str] = None
        if request.tenant is not None and self.config.sticky_affinity:
            pinned = self._affinity.get(request.tenant)
            preferred: Optional[ClusterShard] = None
            if pinned is not None:
                shard = self._by_name[pinned]
                if not shard.is_saturated(self.config.saturation_free_core_fraction):
                    preferred = shard
            else:
                seeded = self._region_shard(request.tenant)
                if seeded is not None and not seeded.is_saturated(
                    self.config.saturation_free_core_fraction
                ):
                    preferred = seeded
                    self.federation_stats.region_seeded += 1
            if preferred is not None:
                order = [preferred] + [s for s in order if s.name != preferred.name]
        return order, pinned

    # ------------------------------------------------------------------ #
    # SchedulerProtocol: placement
    # ------------------------------------------------------------------ #
    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        """Pick a node for a request: shard first, then HEATS inside it.

        Args:
            request: the task to place.
            cluster: the federated (union) cluster the simulator drives;
                placement itself descends into the shard clusters.
            time_s: simulation time of the placement attempt.

        Returns:
            The chosen node name, or None when no shard can host the
            request right now.
        """
        order, pinned = self._routing_order(request)
        for shard in order:
            # Aggregate pre-check only: a shard with fewer free cores (or
            # less free memory) in total than requested can never host, so
            # skip it without touching its node index.
            capacity = shard.cluster.capacity()
            if capacity.free_cores < request.cores or (
                capacity.free_memory_gib < request.memory_gib
            ):
                continue
            node = shard.scheduler.place(request, shard.cluster, time_s)
            if node is None:
                continue
            stats = self.federation_stats
            stats.placements_by_shard[shard.name] = (
                stats.placements_by_shard.get(shard.name, 0) + 1
            )
            if request.tenant is not None:
                if pinned is not None:
                    if shard.name == pinned:
                        stats.affinity_hits += 1
                    else:
                        stats.affinity_misses += 1
                # (Re-)pin so the tenant's next request follows its traffic.
                self._affinity[request.tenant] = shard.name
            return node
        self.federation_stats.unplaced_requests += 1
        return None

    # ------------------------------------------------------------------ #
    # SchedulerProtocol: rescheduling / cross-shard migration
    # ------------------------------------------------------------------ #
    def reschedule(
        self,
        running: Sequence[Placement],
        cluster: Cluster,
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Intra-shard HEATS rescheduling plus saturation-driven drains.

        Each shard's own scheduler proposes its usual in-shard migrations
        first.  Then every saturated shard (free-core fraction below the
        configured floor) drains up to ``max_migrations_per_cycle`` of its
        running tasks into shards with migration headroom, choosing the
        target shard by aggregate score and the target node by that
        shard's HEATS scoring.

        Args:
            running: all running placements across the federation.
            cluster: the federated cluster (unused; shards are authoritative).
            time_s: simulation time of the rescheduling pass.

        Returns:
            (task_id, target_node) pairs; target nodes may live in a
            different shard than the task's current host.
        """
        decisions: List[Tuple[str, str]] = []
        moved: Set[str] = set()
        by_shard: Dict[str, List[Placement]] = {}
        for placement in running:
            shard_name = self._node_shard.get(placement.node)
            if shard_name is not None:
                by_shard.setdefault(shard_name, []).append(placement)

        for shard in self.shards:
            group = by_shard.get(shard.name, [])
            if not group:
                continue
            for task_id, target in shard.scheduler.reschedule(
                group, shard.cluster, time_s
            ):
                decisions.append((task_id, target))
                moved.add(task_id)

        # Planned-load overlay: target selection does not reserve anything,
        # so without it every drain decision in one pass would pick the
        # same (currently emptiest) node and all but the first would be
        # dropped by the placement engine -- overcounting the stats and
        # under-draining the shard.
        planned: Dict[str, Tuple[int, float]] = {}

        def fits_with_planned(node, cores: int, memory_gib: float) -> bool:
            planned_cores, planned_memory = planned.get(node.name, (0, 0.0))
            return node.available.fits(cores + planned_cores, memory_gib + planned_memory)

        for shard in self.shards:
            if not shard.is_saturated(self.config.saturation_free_core_fraction):
                continue
            candidates = [
                placement
                for placement in by_shard.get(shard.name, [])
                if placement.request.task_id not in moved
            ]
            if not candidates:
                continue
            # Cheapest-to-move first: migration downtime grows with the
            # task's memory footprint.
            candidates.sort(key=lambda p: (p.request.memory_gib, p.request.task_id))
            budget = self.config.max_migrations_per_cycle
            for placement in candidates:
                if budget <= 0:
                    break
                request = placement.request
                targets = sorted(
                    (
                        other
                        for other in self.shards
                        if other.name != shard.name
                        and other.capacity().free_core_fraction
                        >= self.config.migration_headroom_fraction
                    ),
                    # Rank with the same federation-wide score placement
                    # uses, so migration and placement agree on shard
                    # preference for identical cluster state.
                    key=lambda other: (
                        self._shard_score(other, request.energy_weight),
                        other.name,
                    ),
                )
                if not targets:
                    break
                for target_shard in targets:
                    nodes = [
                        node
                        for node in target_shard.cluster.feasible_nodes(
                            request.cores, request.memory_gib
                        )
                        if fits_with_planned(node, request.cores, request.memory_gib)
                    ]
                    scored = target_shard.scheduler.score_candidates(request, nodes)
                    if not scored:
                        continue
                    node_name = scored[0].node
                    planned_cores, planned_memory = planned.get(node_name, (0, 0.0))
                    planned[node_name] = (
                        planned_cores + request.cores,
                        planned_memory + request.memory_gib,
                    )
                    decisions.append((request.task_id, node_name))
                    moved.add(request.task_id)
                    self.federation_stats.cross_shard_migrations += 1
                    budget -= 1
                    break
        return decisions

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def shard(self, name: str) -> ClusterShard:
        """Look up a member shard by name.

        Args:
            name: shard name.

        Returns:
            The shard.
        """
        if name not in self._by_name:
            raise KeyError(f"no shard named {name!r}")
        return self._by_name[name]

    def shard_of_node(self, node_name: str) -> str:
        """Name of the shard owning a node.

        Args:
            node_name: node of any member shard.

        Returns:
            The owning shard's name.
        """
        if node_name not in self._node_shard:
            raise KeyError(f"no shard owns node {node_name!r}")
        return self._node_shard[node_name]


class Federation:
    """A built federation: shards, union cluster, scheduler, serving entry.

    Like a :class:`~repro.serving.loop.ServingLoop`, a federation carries
    mutable cluster state; build a fresh one per serving run.
    """

    def __init__(
        self,
        shards: Sequence[ClusterShard],
        config: Optional[FederationConfig] = None,
    ) -> None:
        """Assemble a federation from pre-built shards.

        Args:
            shards: member shards with federation-unique node names.
            config: federation tunables; defaults to ``FederationConfig()``.
        """
        self.shards: List[ClusterShard] = list(shards)
        self.scheduler = FederatedScheduler(self.shards, config=config)
        self.cluster = FederatedCluster(self.shards)
        self._served = False

    @classmethod
    def build(
        cls,
        num_shards: int = 2,
        shard_scale: int = 1,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional[FederationConfig] = None,
        use_score_cache: bool = True,
        seed: int = 7,
        profiles: Optional[Sequence[ShardProfile]] = None,
    ) -> "Federation":
        """Build a federation of HEATS testbed shards.

        Every shard gets an independent profiling seed (``seed + 101 * i``)
        and its own copy of the scheduler config, so no RNG stream, config
        object, or cache is ever shared between shards.

        Args:
            num_shards: number of member shards.
            shard_scale: ``heats_testbed`` scale per shard (4 * scale nodes
                each).
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection / migration tunables.
            use_score_cache: attach a per-shard prediction-score cache.
            seed: federation-level base seed.
            profiles: regional profiles; defaults to cycling
                ``DEFAULT_SHARD_PROFILES``.

        Returns:
            A ready-to-serve :class:`Federation`.
        """
        if num_shards <= 0:
            raise ValueError("a federation needs at least one shard")
        if shard_scale <= 0:
            raise ValueError("shard scale must be positive")
        catalogue = tuple(profiles) if profiles else DEFAULT_SHARD_PROFILES
        profile_cycle = itertools.cycle(catalogue)
        shards = [
            ClusterShard.build(
                index,
                next(profile_cycle),
                scale=shard_scale,
                base_seed=seed,
                heats_config=heats_config,
                use_score_cache=use_score_cache,
            )
            for index in range(num_shards)
        ]
        return cls(shards, config=federation_config)

    @property
    def stats(self) -> FederationStats:
        """The scheduler's routing telemetry."""
        return self.scheduler.federation_stats

    def shard_scores(self, energy_weight: float = 0.5) -> List[ShardScore]:
        """Current shard ranking for a given energy weight.

        Args:
            energy_weight: energy/performance trade-off in [0, 1].

        Returns:
            Shard scores sorted best first.
        """
        return score_shards(self.shards, energy_weight, self.scheduler.config)

    def serve(self, workload, batch_policy=None):
        """Serve a multi-tenant workload through the federation.

        Builds the gateway over the workload's tenants (registering their
        preferred regions as affinity seeds) and runs the serving loop
        with the federated cluster and scheduler as the backend.

        Args:
            workload: a :class:`~repro.serving.loop.ServingWorkload`.
            batch_policy: optional
                :class:`~repro.serving.batching.BatchPolicy` override.

        Returns:
            The :class:`~repro.serving.loop.ServingReport`, with
            ``federation_stats`` populated.
        """
        from repro.serving.gateway import RequestGateway
        from repro.serving.loop import ServingLoop

        if self._served:
            raise RuntimeError(
                "a Federation can only serve once; shard cluster state "
                "carries the previous run -- build a fresh federation"
            )
        self._served = True
        gateway = RequestGateway(workload.tenants)
        for tenant in workload.tenants:
            if tenant.region is not None:
                self.scheduler.register_tenant_region(tenant.name, tenant.region)
        loop = ServingLoop(
            self.cluster, self.scheduler, gateway, batch_policy=batch_policy
        )
        return loop.run(workload.requests)
