"""Repo-root pytest configuration.

Registers the ``--smoke`` flag CI's docs job uses to run the heavier
benchmarks (the federation shard sweep in particular) at a reduced load so
regressions in the federation path fail fast without paying the full
benchmark cost.
"""

from __future__ import annotations


def pytest_addoption(parser):
    """Register the repo-wide ``--smoke`` benchmark-shrinking flag."""
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks in smoke mode: reduced load/repeats, same assertions",
    )
