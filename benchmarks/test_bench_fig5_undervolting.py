"""FIG5: VCCBRAM undervolting -- voltage regions, power saving, fault rate.

Regenerates Fig. 5 of the paper: the VC707 voltage sweep with its three
operating regions, the BRAM power-saving curve (>90 % at Vcrash) and the
exponentially growing fault rate (652 faults/Mbit at Vcrash).
"""

from __future__ import annotations

import math

import pytest

from repro.undervolting.experiment import sweep_platform
from repro.undervolting.voltage import VoltageRegion


@pytest.mark.benchmark(group="fig5")
def test_fig5_vc707_undervolting_curve(benchmark, report_table):
    result = benchmark(sweep_platform, "VC707", 0.01)

    rows = []
    for point in result.points:
        rows.append(
            [
                f"{point.voltage_v:.2f}",
                point.region.value,
                "n/a" if math.isnan(point.faults_per_mbit) else f"{point.faults_per_mbit:.2f}",
                f"{100 * point.power_saving_fraction:.1f}",
            ]
        )
    report_table(
        "fig5_vc707",
        "Fig. 5 reproduction -- VC707 VCCBRAM sweep (paper: Vmin=0.61 V, Vcrash=0.54 V, "
        "652 faults/Mbit and >90 % power saving at Vcrash)",
        ["VCCBRAM (V)", "region", "faults/Mbit", "BRAM power saving (%)"],
        rows,
    )

    # Shape checks against the paper's reported corners.
    assert result.vmin == pytest.approx(0.61, abs=0.02)
    assert result.vcrash == pytest.approx(0.54, abs=0.02)
    assert result.max_faults_per_mbit == pytest.approx(652.0, rel=0.05)
    assert result.max_power_saving_fraction > 0.90
    regions = [p.region for p in result.points]
    assert VoltageRegion.GUARDBAND in regions
    assert VoltageRegion.CRITICAL in regions
    assert VoltageRegion.CRASH in regions
    # Fault rate grows monotonically (exponentially) through the critical region.
    critical = [p.faults_per_mbit for p in result.critical_points()]
    assert all(critical[i] <= critical[i + 1] + 1e-9 for i in range(len(critical) - 1))
