"""AUTOSCALE: step load, static over-provisioning vs elastic capacity.

Not a paper figure: this benchmark measures the telemetry + autoscale
layer closing the ROADMAP's energy-efficiency loop at the fleet level.
The same quiet / 5x-spike / quiet request stream is served twice:

1. **Static** -- a two-shard federation provisioned for the spike (8
   nodes for the whole run), PR 2's deployment model.
2. **Autoscaled** -- a one-shard federation (4 nodes) plus the control
   loop: telemetry-driven scale-up through the spike, lossless drain
   back down afterwards.

Reported per run: SLA-violation rate (missed deadlines + drops over
served traffic) and node-seconds consumed.  The elastic run must meet
the SLA of the statically over-provisioned one on measurably fewer
node-seconds -- otherwise the control loop is not earning its keep.
Emitted to ``BENCH_autoscale_step_load.json``; the table renders to
``benchmarks/results/autoscale_step_load.txt``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import DeploymentSpec, LegatoSystem, ServingWorkload
from repro.api import AutoscaleSpec, ServingSpec, TelemetrySpec, TopologySpec
from repro.autoscale import ScalingAction
from repro.serving import BatchPolicy, Tenant

BATCH_POLICY = BatchPolicy(max_batch_size=8, max_delay_s=1.0)
#: the static baseline's fleet: 2 shards x 4 nodes, sized for the spike.
STATIC_SHARDS, STATIC_SCALE = 2, 1
#: the elastic run starts at half that and must earn the rest.
AUTO_SHARDS, AUTO_SCALE = 1, 1


def _tenants():
    return [
        Tenant(name="dashboards", rate_limit_rps=400.0, burst=200,
               energy_weight=0.2, latency_slo_s=120.0),
        Tenant(name="sensors", rate_limit_rps=400.0, burst=200,
               energy_weight=0.8, region="eu-north"),
    ]


def step_load(base_rps: float, spike_rps: float, segment_s: float, seed: int):
    """Quiet -> spike -> quiet, stitched from three Poisson segments."""
    mix = {
        "dashboards": {"ml_inference": 0.6, "smartmirror": 0.4},
        "sensors": {"iot_gateway": 0.8, "ml_inference": 0.2},
    }
    tenants = _tenants()
    requests = []
    for index, rps in enumerate((base_rps, spike_rps, base_rps)):
        segment = ServingWorkload.synthetic(
            tenants, mix, offered_rps=rps, duration_s=segment_s, seed=seed + index
        )
        offset = index * segment_s
        requests.extend(
            replace(
                request,
                request_id=f"s{index}-{request.request_id}",
                arrival_s=request.arrival_s + offset,
                deadline_s=(
                    request.deadline_s + offset
                    if request.deadline_s is not None
                    else None
                ),
            )
            for request in segment.requests
        )
    requests.sort(key=lambda request: (request.arrival_s, request.request_id))
    return ServingWorkload(tenants=tuple(tenants), requests=tuple(requests))


def sla_violation_rate(report) -> float:
    """Missed deadlines plus drops, over everything the backend owed."""
    misses = sum(r.deadline_misses for r in report.tenant_reports.values())
    owed = report.completed + report.dropped
    return (misses + report.dropped) / owed if owed else 0.0


@pytest.mark.benchmark(group="autoscale")
def test_autoscale_step_load(bench, smoke):
    # Smoke keeps the full-load *rates* (the pressure that makes the
    # controller act) and shortens the segments instead.
    base_rps, spike_rps, segment_s = (20.0, 120.0, 8.0) if smoke else (20.0, 120.0, 25.0)

    serving = ServingSpec.from_batch_policy(BATCH_POLICY)
    static_spec = DeploymentSpec(
        name="static-federation",
        topology=TopologySpec(
            cluster_scale=STATIC_SHARDS * STATIC_SCALE, shards=STATIC_SHARDS
        ),
        serving=serving,
    )
    static_report = LegatoSystem().deploy(static_spec).serve(
        step_load(base_rps, spike_rps, segment_s, seed=101)
    )
    static_nodes = 4 * STATIC_SHARDS * STATIC_SCALE
    static_node_seconds = static_nodes * static_report.horizon_s

    auto_spec = DeploymentSpec(
        name="autoscaled",
        topology=TopologySpec(
            cluster_scale=AUTO_SHARDS * AUTO_SCALE, shards=AUTO_SHARDS
        ),
        serving=serving,
        autoscale=AutoscaleSpec(enabled=True),
        telemetry=TelemetrySpec(enabled=True),
    )
    auto_deployment = LegatoSystem().deploy(auto_spec)
    auto_report = auto_deployment.serve(
        step_load(base_rps, spike_rps, segment_s, seed=101)
    )
    auto = auto_report.autoscale_report

    rows = [
        [
            "static 2-shard",
            f"{static_nodes}",
            static_report.completed,
            static_report.dropped,
            f"{sla_violation_rate(static_report):.4f}",
            f"{static_report.p99_latency_s:.1f}",
            f"{static_node_seconds:.0f}",
            "-",
        ],
        [
            "autoscaled",
            f"{auto.min_nodes}..{auto.peak_nodes}",
            auto_report.completed,
            auto_report.dropped,
            f"{sla_violation_rate(auto_report):.4f}",
            f"{auto_report.p99_latency_s:.1f}",
            f"{auto.node_seconds:.0f}",
            " ".join(
                f"{action.value}x{auto.action_count(action)}"
                for action in ScalingAction
                if auto.action_count(action)
            ),
        ],
        [
            "saving",
            "",
            "",
            "",
            "",
            "",
            f"{100 * (1 - auto.node_seconds / static_node_seconds):.0f}%",
            "",
        ],
    ]
    run = bench("autoscale_step_load")
    run.metric("ops_per_sec", auto_report.ops_per_sec, direction="higher",
               tolerance=0.05)
    run.metric("p50_latency_s", auto_report.p50_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("p99_latency_s", auto_report.p99_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("node_seconds", auto.node_seconds, direction="lower",
               tolerance=0.05)
    run.metric(
        "node_seconds_saving_pct",
        100 * (1 - auto.node_seconds / static_node_seconds),
        direction="higher", tolerance=0.10, abs_tolerance=3.0,
    )
    run.metric("sla_violation_rate", sla_violation_rate(auto_report),
               direction="lower", abs_tolerance=0.02)
    run.metric("completed", auto_report.completed, direction="higher",
               tolerance=0.01)
    run.metric("static_node_seconds", static_node_seconds, direction="lower",
               gate=False)
    run.attach_counters(auto_deployment.metrics().counters)
    run.table(
        "autoscale_step_load",
        "Autoscale step load -- quiet / 5x spike / quiet "
        f"({len(_tenants())} tenants, {3 * segment_s:.0f} s of arrivals"
        f"{', smoke' if smoke else ''})",
        ["backend", "nodes", "completed", "dropped", "SLA viol rate",
         "p99 (s)", "node-seconds", "scaling actions"],
        rows,
    )

    # Identical traffic is owed by both backends, and both conserve it.
    assert static_report.offered == auto_report.offered > 0
    for report in (static_report, auto_report):
        assert report.admitted == report.completed + report.dropped
    # The control loop actually flexed: capacity rose for the spike and
    # drained back down afterwards.
    assert auto.peak_nodes > auto.min_nodes
    assert auto.action_count(ScalingAction.GROW_NODE) + auto.action_count(
        ScalingAction.ADD_SHARD
    ) >= 1
    assert auto.action_count(ScalingAction.SHRINK_NODE) + auto.action_count(
        ScalingAction.REMOVE_SHARD
    ) >= 1
    assert auto.final_nodes < auto.peak_nodes
    # Acceptance: the elastic run meets the static run's SLA on measurably
    # fewer node-seconds (the small tolerance keeps scheduler noise from
    # flipping the build on shared CI runners).
    assert sla_violation_rate(auto_report) <= sla_violation_rate(static_report) + 0.02
    assert auto.node_seconds < 0.85 * static_node_seconds
