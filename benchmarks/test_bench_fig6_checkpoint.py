"""FIG6: Heat2D checkpoint/restart time under weak scaling.

Regenerates both panels of Fig. 6: checkpoint and recovery time for the
initial (blocking) and async (optimised) FTI implementations, at 1/4/8/16
nodes with 4 ranks per node and 16 GiB / 32 GiB of checkpointed data per
rank (1 TiB / 2 TiB total at 16 nodes).
"""

from __future__ import annotations

import pytest

from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import run_fig6_experiment

NODE_COUNTS = (1, 4, 8, 16)
SIZES = (16.0, 32.0)


@pytest.mark.benchmark(group="fig6")
def test_fig6_heat2d_checkpoint_restart(benchmark, report_table):
    points = benchmark(run_fig6_experiment, NODE_COUNTS, SIZES)

    rows = []
    for point in points:
        rows.append(
            [
                f"{point.gib_per_rank:.0f} GiB/rank",
                point.nodes,
                f"{point.total_checkpointed_tib * 1024:.0f} GiB",
                point.strategy.value,
                f"{point.checkpoint_time_s:.1f}",
                f"{point.recover_time_s:.1f}",
            ]
        )
    report_table(
        "fig6_checkpoint",
        "Fig. 6 reproduction -- Heat2D C/R time (paper: flat under weak scaling; "
        "async ~12x faster checkpoints, ~5x faster recovery)",
        ["problem size", "nodes", "total ckpt data", "strategy", "ckpt (s)", "recover (s)"],
        rows,
    )

    def select(nodes, gib, strategy):
        return next(
            p for p in points if p.nodes == nodes and p.gib_per_rank == gib and p.strategy == strategy
        )

    for gib in SIZES:
        initial_costs = [select(n, gib, CheckpointStrategy.INITIAL).checkpoint_time_s for n in NODE_COUNTS]
        async_costs = [select(n, gib, CheckpointStrategy.ASYNC).checkpoint_time_s for n in NODE_COUNTS]
        # Weak scaling: checkpoint overhead does not increase with node count.
        assert max(initial_costs) == pytest.approx(min(initial_costs), rel=0.05)
        assert max(async_costs) == pytest.approx(min(async_costs), rel=0.05)
        # The async path wins by roughly an order of magnitude on checkpoints
        # and around 5x on recovery, at every scale.
        for nodes in NODE_COUNTS:
            initial = select(nodes, gib, CheckpointStrategy.INITIAL)
            asynchronous = select(nodes, gib, CheckpointStrategy.ASYNC)
            assert 8.0 < initial.checkpoint_time_s / asynchronous.checkpoint_time_s < 20.0
            assert 3.0 < initial.recover_time_s / asynchronous.recover_time_s < 8.0
    # Total checkpointed data matches the paper's axis labels at 16 nodes.
    assert select(16, 16.0, CheckpointStrategy.ASYNC).total_checkpointed_tib == pytest.approx(1.0, rel=0.01)
    assert select(16, 32.0, CheckpointStrategy.ASYNC).total_checkpointed_tib == pytest.approx(2.0, rel=0.01)
