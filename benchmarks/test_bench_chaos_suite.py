"""CHAOS: flash crowd + node failure through the scenario engine.

Not a paper figure: this benchmark holds the serving stack to its
degraded-mode promises. A two-tenant scenario offers a quiet Poisson
floor plus a flash crowd, and mid-spike the chaos layer kills a node
(permanently) and throttles another for a window. Gated per run:

* ``sla_hit_rate`` -- deadlines met over everything the backend owed;
  the floor the stack must hold while losing capacity under burst load.
* ``recovery_after_heal_s`` -- how long the backlog takes to drain
  after the throttle window heals (simulated clock, deterministic).
* ``generation_overhead_x`` -- host-time cost of materialising the
  scenario workload relative to ``ServingWorkload.synthetic`` at the
  same offered volume; thinning + Pareto sampling must stay cheap.

Emitted to ``BENCH_chaos_suite.json``; the table renders to
``benchmarks/results/chaos_suite.txt``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.api import Deployment, DeploymentSpec
from repro.scenarios import (
    ArrivalSpec,
    ChaosEventSpec,
    ChaosSchedule,
    ParetoSpec,
    ScenarioSpec,
    TenantTrafficSpec,
    build_workload,
    conservation_violations,
)
from repro.serving import ServingWorkload, Tenant

#: the throttle window heals at at_s + duration_s; recovery is measured
#: from this instant to the last completion.
THROTTLE_AT_S, THROTTLE_FOR_S = 15.0, 20.0


def _scenario(duration_s: float, spike_rps: float) -> ScenarioSpec:
    spike_start = duration_s / 3.0
    return ScenarioSpec(
        name="chaos-suite",
        duration_s=duration_s,
        traffic=(
            TenantTrafficSpec(
                name="burst",
                arrival=ArrivalSpec(
                    kind="flash_crowd", rate_rps=2.0, spike_rps=spike_rps,
                    spike_start_s=spike_start, spike_duration_s=duration_s / 6.0,
                ),
                endpoint_mix=(("ml_inference", 0.6), ("iot_gateway", 0.4)),
            ),
            TenantTrafficSpec(
                name="steady",
                arrival=ArrivalSpec(kind="poisson", rate_rps=2.0),
            ),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="node_failure", at_s=spike_start + 5.0),
            ChaosEventSpec(kind="thermal_throttle", at_s=THROTTLE_AT_S,
                           duration_s=THROTTLE_FOR_S),
        )),
        sizes=ParetoSpec(alpha=1.6, lower=0.5, upper=3.0),
        deadlines=ParetoSpec(alpha=2.0, lower=0.8, upper=2.5),
    )


def sla_hit_rate(report) -> float:
    """Deadlines met over everything the backend owed (completed + dropped)."""
    hits = sum(r.deadline_hits for r in report.tenant_reports.values())
    owed = report.completed + report.dropped
    return hits / owed if owed else 1.0


def _generation_overhead(spec: ScenarioSpec, repeats: int = 3) -> float:
    """Host-time ratio: scenario materialisation vs the static synthesiser."""
    tenants = [Tenant(name="burst"), Tenant(name="steady")]
    mix = {"burst": {"ml_inference": 0.6, "iot_gateway": 0.4},
           "steady": {"ml_inference": 1.0}}
    volume = len(build_workload(spec).requests)
    offered_rps = max(volume / spec.duration_s, 0.1)

    def _best(fn) -> float:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return min(samples)

    scenario_s = _best(lambda: build_workload(spec))
    synthetic_s = _best(
        lambda: ServingWorkload.synthetic(
            tenants, mix, offered_rps=offered_rps,
            duration_s=spec.duration_s, seed=11,
        )
    )
    return scenario_s / synthetic_s if synthetic_s > 0 else 1.0


@pytest.mark.benchmark(group="chaos")
def test_chaos_suite(bench, smoke):
    # Smoke keeps the spike *rate* (the pressure) and shortens the run.
    duration_s, spike_rps = (60.0, 12.0) if smoke else (150.0, 15.0)
    spec = _scenario(duration_s, spike_rps)

    deploy_spec = DeploymentSpec.preset("federated")
    deploy_spec = replace(
        deploy_spec,
        telemetry=replace(deploy_spec.telemetry, enabled=True, tracing=True),
        scheduler=replace(deploy_spec.scheduler, rescheduling_interval_s=5.0),
    )
    deployment = Deployment.from_spec(deploy_spec)
    try:
        outcome = deployment.run_scenario(spec)
        report = outcome.report

        heal_s = THROTTLE_AT_S + THROTTLE_FOR_S
        makespan_s = report.simulation.makespan_s
        recovery_s = max(0.0, makespan_s - heal_s)
        overhead_x = _generation_overhead(spec)
        chaos_spans = [
            s for s in report.trace_spans if s.name.startswith("chaos.")
        ]

        rows = [
            [
                spec.name + (" (smoke)" if smoke else ""),
                report.offered,
                report.completed,
                report.rejected,
                report.dropped,
                f"{sla_hit_rate(report):.4f}",
                f"{report.p99_latency_s:.1f}",
                f"{recovery_s:.1f}",
                " ".join(
                    f"{r.kind}:{r.status}" for r in outcome.chaos.records
                ),
            ],
        ]
        run = bench("chaos_suite")
        run.metric("sla_hit_rate", sla_hit_rate(report), direction="higher",
                   abs_tolerance=0.05)
        run.metric("recovery_after_heal_s", recovery_s, direction="lower",
                   tolerance=0.10, abs_tolerance=5.0)
        # Host time on shared runners is noisy: the gate only trips when
        # generation becomes catastrophically slower than the synthesiser.
        run.metric("generation_overhead_x", overhead_x, direction="lower",
                   tolerance=1.0, abs_tolerance=4.0)
        run.metric("completed", report.completed, direction="higher",
                   tolerance=0.01)
        run.metric("p99_latency_s", report.p99_latency_s, direction="lower",
                   tolerance=0.10)
        run.metric("offered", report.offered, gate=False)
        run.metric("chaos_spans", len(chaos_spans), direction="higher",
                   gate=False)
        run.attach_counters(deployment.metrics().counters)
        run.table(
            "chaos_suite",
            "Chaos suite -- flash crowd + node failure + thermal throttle "
            f"({duration_s:.0f} s of arrivals{', smoke' if smoke else ''})",
            ["scenario", "offered", "completed", "rejected", "dropped",
             "SLA hit rate", "p99 (s)", "recovery (s)", "chaos"],
            rows,
        )

        # The scenario actually bit: both injections landed, the victim
        # node is gone, and the accounting survived all of it.
        assert conservation_violations(outcome) == []
        assert outcome.chaos.applied("node_failure")
        assert outcome.chaos.applied("thermal_throttle")
        assert outcome.chaos.dead_nodes
        assert chaos_spans
        assert report.offered > 0
        # Acceptance floors (the pinned baseline tightens these further).
        assert sla_hit_rate(report) >= 0.5
        assert makespan_s >= heal_s  # work was still in flight at heal time
    finally:
        deployment.close()
