"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and records
its headline numbers through :mod:`harness` (see ``benchmarks/harness.py``):
the JSON artefact ``BENCH_<name>.json`` at the repository root is the
source of truth, and the ``benchmarks/results/*.txt`` tables are rendered
from it.  ``python benchmarks/harness.py check`` gates the emitted numbers
against the pinned baselines in ``benchmarks/baselines/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import pytest

from harness import BenchRun, format_table  # noqa: F401  (re-exported helper)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def smoke(request) -> bool:
    """Whether the run was started with ``--smoke`` (reduced benchmark load)."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture
def bench(request, smoke):
    """Factory for :class:`harness.BenchRun` records, finished at teardown.

    Usage::

        def test_bench_x(bench):
            run = bench("core_speed")
            run.metric("ops_per_sec", 123.0, direction="higher")
            run.table("core_speed", "Table 1: ...", headers, rows)

    Each named run writes ``BENCH_<name>.json`` at the repository root and
    renders its tables to ``benchmarks/results/`` when the test finishes.
    The run's tier is ``smoke`` or ``full`` depending on ``--smoke``.
    """
    runs = []

    def _bench(name: str) -> BenchRun:
        run = BenchRun(name, tier="smoke" if smoke else "full")
        runs.append(run)
        return run

    yield _bench
    for run in runs:
        run.finish(quiet=False)


@pytest.fixture
def report_table(bench):
    """Print a reproduced table and persist it (JSON-backed).

    Back-compat shim over the ``bench`` fixture: tables recorded here ride
    along in a ``BENCH_<name>.json`` artefact and are rendered to
    ``benchmarks/results/<name>.txt`` from it.
    """

    def _report(
        name: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> str:
        run = bench(name)
        return run.table(name, title, headers, rows)

    return _report
