"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints the
reproduced rows/series, and writes them to ``benchmarks/results/<name>.txt``
so the numbers are inspectable after a ``--benchmark-only`` run (where
captured stdout is not shown).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


@pytest.fixture
def smoke(request) -> bool:
    """Whether the run was started with ``--smoke`` (reduced benchmark load)."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture
def report_table():
    """Print a reproduced table and persist it under benchmarks/results/."""

    def _report(name: str, title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
        table = f"{title}\n{format_table(headers, rows)}\n"
        print("\n" + table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table)
        return table

    return _report
