"""FIG7: HEATS behavioural evaluation -- the energy/performance trade-off.

Fig. 7 of the paper shows HEATS's architecture; its behaviour (summarised in
Section V and evaluated in the HEATS PDP'19 paper) is that the scheduler
lets customers trade performance against energy: with an energy-leaning
weight it undercuts the energy of heterogeneity-unaware scheduling, and with
a performance-leaning weight it tracks the best-performance scheduler.

The benchmark replays the same task stream under HEATS (at several
energy/performance weights) and under the three baselines, on the same
heterogeneous cluster, and reports energy and mean turnaround per policy.
"""

from __future__ import annotations

import pytest

from repro.scheduler.baselines import (
    EnergyGreedyScheduler,
    PerformanceBestFitScheduler,
    RoundRobinScheduler,
)
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.scheduler.simulation import run_policy_comparison
from repro.scheduler.workload import TaskRequest, WorkloadGenerator

ENERGY_WEIGHTS = (0.0, 0.5, 1.0)
NUM_TASKS = 60


def _cluster() -> Cluster:
    return Cluster.heats_testbed(scale=2)


def _reweighted(requests, weight):
    return [
        TaskRequest(
            task_id=r.task_id,
            arrival_s=r.arrival_s,
            workload=r.workload,
            gops=r.gops,
            cores=r.cores,
            memory_gib=r.memory_gib,
            energy_weight=weight,
        )
        for r in requests
    ]


def run_tradeoff():
    models = ProfilingCampaign(_cluster(), noise_fraction=0.03, seed=11).run().fit()
    base_requests = WorkloadGenerator(seed=11, mean_interarrival_s=12.0).generate(NUM_TASKS)

    results = {}
    for weight in ENERGY_WEIGHTS:
        requests = _reweighted(base_requests, weight)
        outcome = run_policy_comparison(
            _cluster, {"heats": lambda cluster: HeatsScheduler(models)}, requests
        )["heats"]
        results[f"heats(w={weight:.1f})"] = outcome
    baseline_outcomes = run_policy_comparison(
        _cluster,
        {
            "round_robin": lambda cluster: RoundRobinScheduler(models),
            "performance_best_fit": lambda cluster: PerformanceBestFitScheduler(models),
            "energy_greedy": lambda cluster: EnergyGreedyScheduler(models),
        },
        _reweighted(base_requests, 0.5),
    )
    results.update(baseline_outcomes)
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_heats_energy_performance_tradeoff(benchmark, report_table):
    results = benchmark(run_tradeoff)

    rows = []
    for name, outcome in results.items():
        rows.append(
            [
                name,
                len(outcome.completed),
                f"{outcome.task_energy_j / 1e3:.1f}",
                f"{outcome.total_energy_j / 1e3:.1f}",
                f"{outcome.mean_turnaround_s:.1f}",
                outcome.num_migrations,
            ]
        )
    report_table(
        "fig7_heats",
        "Fig. 7 / Section V reproduction -- HEATS vs baselines on the same task stream",
        ["policy", "tasks", "task energy (kJ)", "total energy (kJ)", "mean turnaround (s)", "migrations"],
        rows,
    )

    heats_energy = results["heats(w=1.0)"]
    heats_perf = results["heats(w=0.0)"]
    round_robin = results["round_robin"]
    perf_best = results["performance_best_fit"]
    energy_greedy = results["energy_greedy"]

    # Everybody finishes the stream.
    assert all(len(r.completed) == NUM_TASKS for r in results.values())
    # Energy-leaning HEATS saves task energy versus heterogeneity-unaware
    # round-robin placement (the headline HEATS claim).
    assert heats_energy.task_energy_j < round_robin.task_energy_j
    # Performance-leaning HEATS is at least as fast as energy-greedy placement
    # and close to the performance-only scheduler.
    assert heats_perf.mean_turnaround_s <= energy_greedy.mean_turnaround_s * 1.05
    assert heats_perf.mean_turnaround_s <= perf_best.mean_turnaround_s * 1.25
    # The knob is monotone: leaning towards energy does not increase task energy.
    assert results["heats(w=1.0)"].task_energy_j <= results["heats(w=0.0)"].task_energy_j + 1e-6
