"""SERVING: the multi-tenant front-end under increasing offered load.

Not a paper figure: this benchmark measures the cluster-as-a-service layer
the ROADMAP asks for.  Two experiments:

1. **Offered-load sweep** -- the same two tenants offer 3 traffic levels;
   reported per level: ops/sec actually served, p50/p99 end-to-end latency,
   admission rejection rate, and energy per request.  Throughput must rise
   with offered load and the tenants' rate limits must start rejecting at
   the highest level.
2. **Score-cache ablation** -- the identical workload replayed with the
   HEATS prediction-score cache on vs off (same learned models, fresh
   cluster per run).  The cached run must be measurably faster while
   serving the same number of requests.
"""

from __future__ import annotations

import time

import pytest

from repro import LegatoSystem, ServingWorkload
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.serving import (
    BatchPolicy,
    PredictionScoreCache,
    RequestGateway,
    ServingLoop,
    Tenant,
)

LOAD_LEVELS_RPS = (8.0, 24.0, 72.0)
DURATION_S = 30.0
CLUSTER_SCALE = 4
#: capped batch size keeps per-batch service time bounded, so the post-arrival
#: drain tail is comparable across load levels.
SWEEP_BATCH_POLICY = BatchPolicy(max_batch_size=8, max_delay_s=2.0)


def _tenants():
    return [
        Tenant(name="perf-tenant", rate_limit_rps=20.0, burst=20, energy_weight=0.1,
               latency_slo_s=180.0),
        Tenant(name="eco-tenant", rate_limit_rps=20.0, burst=20, energy_weight=0.9),
    ]


def _mix():
    return {
        "perf-tenant": {"ml_inference": 0.6, "smartmirror": 0.4},
        "eco-tenant": {"iot_gateway": 0.7, "ml_inference": 0.3},
    }


def _workload(offered_rps: float, seed: int = 17) -> ServingWorkload:
    return ServingWorkload.synthetic(
        _tenants(), _mix(), offered_rps=offered_rps, duration_s=DURATION_S, seed=seed
    )


def run_load_sweep():
    system = LegatoSystem()
    return {
        rps: system.serve(
            _workload(rps), cluster_scale=CLUSTER_SCALE, batch_policy=SWEEP_BATCH_POLICY
        )
        for rps in LOAD_LEVELS_RPS
    }


@pytest.mark.benchmark(group="serving")
def test_serving_offered_load_sweep(benchmark, report_table):
    reports = benchmark(run_load_sweep)

    rows = []
    for rps, report in reports.items():
        rows.append(
            [
                f"{rps:.0f}",
                report.offered,
                report.completed,
                f"{report.ops_per_sec:.2f}",
                f"{report.p50_latency_s:.2f}",
                f"{report.p99_latency_s:.2f}",
                f"{report.rejection_rate:.3f}",
                f"{report.energy_per_request_j:.2f}",
            ]
        )
    report_table(
        "serving_load",
        "Serving front-end -- two tenants, HEATS backend, rising offered load",
        ["offered rps", "offered", "completed", "ops/sec", "p50 (s)", "p99 (s)",
         "reject rate", "J/request"],
        rows,
    )

    low, mid, high = (reports[rps] for rps in LOAD_LEVELS_RPS)
    # Everything admitted completes (round-trip conservation) at every level.
    for report in (low, mid, high):
        assert report.completed > 0
        assert report.admitted == report.completed + report.dropped
        assert report.p99_latency_s >= report.p50_latency_s > 0
    # Served throughput rises with offered load.
    assert low.ops_per_sec < mid.ops_per_sec < high.ops_per_sec
    # The 20 rps/tenant token buckets bite only at the highest level.
    assert low.rejection_rate == 0.0
    assert high.rejection_rate > mid.rejection_rate
    assert high.rejection_rate > 0.2


def _ablation_run(models, workload, use_cache: bool):
    cluster = Cluster.heats_testbed(scale=CLUSTER_SCALE)
    scheduler = HeatsScheduler(
        models, score_cache=PredictionScoreCache() if use_cache else None
    )
    loop = ServingLoop(cluster, scheduler, RequestGateway(workload.tenants))
    start = time.perf_counter()
    report = loop.run(workload.requests)
    return time.perf_counter() - start, report


@pytest.mark.benchmark(group="serving")
def test_serving_score_cache_ablation(report_table):
    # High request volume on generous limits: the scoring hot path dominates.
    tenants = [
        Tenant(name="perf-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.1),
        Tenant(name="eco-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.9),
    ]
    workload = ServingWorkload.synthetic(
        tenants, _mix(), offered_rps=150.0, duration_s=DURATION_S, seed=23
    )
    models = ProfilingCampaign(
        Cluster.heats_testbed(scale=CLUSTER_SCALE), seed=7
    ).run().fit()

    repeats = 5
    timings = {True: [], False: []}
    reports = {}
    for _ in range(repeats):
        for use_cache in (True, False):
            elapsed, report = _ablation_run(models, workload, use_cache)
            timings[use_cache].append(elapsed)
            reports[use_cache] = report
    cached_s, uncached_s = min(timings[True]), min(timings[False])
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    hit_rate = reports[True].cache_stats.hit_rate

    report_table(
        "serving_cache_ablation",
        "Serving front-end -- HEATS score cache ablation (min of "
        f"{repeats} runs, {len(workload.requests)} requests)",
        ["score cache", "loop time (ms)", "hit rate", "completed", "ops/sec"],
        [
            ["on", f"{cached_s * 1e3:.1f}", f"{hit_rate:.2f}",
             reports[True].completed, f"{reports[True].ops_per_sec:.2f}"],
            ["off", f"{uncached_s * 1e3:.1f}", "-",
             reports[False].completed, f"{reports[False].ops_per_sec:.2f}"],
            ["speedup", f"{speedup:.2f}x", "", "", ""],
        ],
    )

    # The cache serves the same traffic...
    assert reports[True].offered == reports[False].offered
    assert reports[True].completed == reports[False].completed > 0
    # ...absorbs most scoring work (deterministic)...
    assert hit_rate > 0.5
    # ...and the min-of-N cached run beats the min-of-N uncached run.
    # (Typical margin is ~1.4x; the assertion is deliberately loose so a
    # noisy shared CI runner cannot flip it.)
    assert speedup > 1.0
