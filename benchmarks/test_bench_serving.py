"""SERVING: the multi-tenant front-end under increasing offered load.

Not a paper figure: this benchmark measures the cluster-as-a-service layer
the ROADMAP asks for.  Three experiments:

1. **Offered-load sweep** -- the same two tenants offer 3 traffic levels;
   reported per level: ops/sec actually served, p50/p99 end-to-end latency,
   admission rejection rate, and energy per request.  Throughput must rise
   with offered load and the tenants' rate limits must start rejecting at
   the highest level.
2. **Score-cache ablation** -- the identical workload replayed with the
   HEATS prediction-score cache on vs off (same learned models, fresh
   cluster per run).  The cached run must be measurably faster while
   serving the same number of requests.
3. **Federation shard sweep** -- the identical workload served by 1, 2,
   and 4 shards at a fixed total node count (1 shard = today's single
   HEATS cluster).  Per-request placement latency is measured around the
   scheduler's ``place`` calls; the 4-shard federation must place at least
   as fast as the single-cluster baseline because node-level scoring only
   ever runs over one shard's nodes.

The sweep emits ``BENCH_serving.json`` and the shard sweep
``BENCH_federation_sweep.json``; their tables render to
``benchmarks/results/serving_load.txt`` /
``benchmarks/results/federation_sweep.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro import DeploymentSpec, LegatoSystem, ServingWorkload
from repro.api import ServingSpec, TopologySpec
from repro.federation import Federation
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.serving import (
    BatchPolicy,
    PredictionScoreCache,
    RequestGateway,
    ServingLoop,
    Tenant,
)

LOAD_LEVELS_RPS = (8.0, 24.0, 72.0)
DURATION_S = 30.0
CLUSTER_SCALE = 4
#: capped batch size keeps per-batch service time bounded, so the post-arrival
#: drain tail is comparable across load levels.
SWEEP_BATCH_POLICY = BatchPolicy(max_batch_size=8, max_delay_s=2.0)


def _tenants():
    return [
        Tenant(name="perf-tenant", rate_limit_rps=20.0, burst=20, energy_weight=0.1,
               latency_slo_s=180.0),
        Tenant(name="eco-tenant", rate_limit_rps=20.0, burst=20, energy_weight=0.9),
    ]


def _mix():
    return {
        "perf-tenant": {"ml_inference": 0.6, "smartmirror": 0.4},
        "eco-tenant": {"iot_gateway": 0.7, "ml_inference": 0.3},
    }


def _workload(
    offered_rps: float, seed: int = 17, duration_s: float = DURATION_S
) -> ServingWorkload:
    return ServingWorkload.synthetic(
        _tenants(), _mix(), offered_rps=offered_rps, duration_s=duration_s, seed=seed
    )


def run_load_sweep(duration_s: float = DURATION_S):
    # One spec, one deployment per level: every load level replays on a
    # fresh (cold-cache) backend so the levels stay comparable.
    spec = DeploymentSpec(
        name="load-sweep",
        topology=TopologySpec(cluster_scale=CLUSTER_SCALE),
        serving=ServingSpec.from_batch_policy(SWEEP_BATCH_POLICY),
    )
    system = LegatoSystem()
    return {
        rps: system.deploy(spec).serve(_workload(rps, duration_s=duration_s))
        for rps in LOAD_LEVELS_RPS
    }


@pytest.mark.benchmark(group="serving")
def test_serving_offered_load_sweep(bench, smoke):
    # Smoke keeps the rate levels (the admission pressure that makes the
    # token buckets bite) and shortens the arrival window instead.
    duration_s = 10.0 if smoke else DURATION_S
    start = time.perf_counter()
    reports = run_load_sweep(duration_s)
    sweep_wall_s = time.perf_counter() - start

    rows = []
    for rps, report in reports.items():
        rows.append(
            [
                f"{rps:.0f}",
                report.offered,
                report.completed,
                f"{report.ops_per_sec:.2f}",
                f"{report.p50_latency_s:.2f}",
                f"{report.p99_latency_s:.2f}",
                f"{report.rejection_rate:.3f}",
                f"{report.energy_per_request_j:.2f}",
            ]
        )
    low, mid, high = (reports[rps] for rps in LOAD_LEVELS_RPS)
    run = bench("serving")
    # The headline metrics come from the highest load level -- the regime
    # that exercises admission control and the placement hot path.
    run.metric("ops_per_sec", high.ops_per_sec, direction="higher",
               tolerance=0.05)
    run.metric("p50_latency_s", high.p50_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("p99_latency_s", high.p99_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("node_seconds", 4 * CLUSTER_SCALE * high.horizon_s,
               direction="lower", tolerance=0.05)
    run.metric("completed_total",
               sum(report.completed for report in reports.values()),
               direction="higher", tolerance=0.01)
    run.metric("energy_per_request_j", high.energy_per_request_j,
               direction="lower", tolerance=0.05)
    run.metric("rejection_rate_high", high.rejection_rate, direction="lower",
               gate=False)
    run.metric("wall_clock_s", sweep_wall_s, direction="lower", gate=False)
    run.table(
        "serving_load",
        "Serving front-end -- two tenants, HEATS backend, rising offered load"
        + (" (smoke)" if smoke else ""),
        ["offered rps", "offered", "completed", "ops/sec", "p50 (s)", "p99 (s)",
         "reject rate", "J/request"],
        rows,
    )
    # Everything admitted completes (round-trip conservation) at every level.
    for report in (low, mid, high):
        assert report.completed > 0
        assert report.admitted == report.completed + report.dropped
        assert report.p99_latency_s >= report.p50_latency_s > 0
    # Served throughput rises with offered load.
    assert low.ops_per_sec < mid.ops_per_sec < high.ops_per_sec
    # The 20 rps/tenant token buckets bite only at the highest level.
    assert low.rejection_rate == 0.0
    assert high.rejection_rate > mid.rejection_rate
    assert high.rejection_rate > 0.2


def _ablation_run(models, workload, use_cache: bool):
    cluster = Cluster.heats_testbed(scale=CLUSTER_SCALE)
    scheduler = HeatsScheduler(
        models, score_cache=PredictionScoreCache() if use_cache else None
    )
    loop = ServingLoop(cluster, scheduler, RequestGateway(workload.tenants))
    start = time.perf_counter()
    report = loop.run(workload.requests)
    return time.perf_counter() - start, report


@pytest.mark.benchmark(group="serving")
def test_serving_score_cache_ablation(bench):
    # High request volume on generous limits: the scoring hot path dominates.
    tenants = [
        Tenant(name="perf-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.1),
        Tenant(name="eco-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.9),
    ]
    workload = ServingWorkload.synthetic(
        tenants, _mix(), offered_rps=150.0, duration_s=DURATION_S, seed=23
    )
    models = ProfilingCampaign(
        Cluster.heats_testbed(scale=CLUSTER_SCALE), seed=7
    ).run().fit()

    repeats = 5
    timings = {True: [], False: []}
    reports = {}
    for _ in range(repeats):
        for use_cache in (True, False):
            elapsed, report = _ablation_run(models, workload, use_cache)
            timings[use_cache].append(elapsed)
            reports[use_cache] = report
    cached_s, uncached_s = min(timings[True]), min(timings[False])
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    hit_rate = reports[True].cache_stats.hit_rate

    run = bench("serving_cache_ablation")
    run.metric("cache_speedup", speedup, direction="higher",
               tolerance=0.50, abs_tolerance=0.40)
    run.metric("hit_rate", hit_rate, direction="higher", tolerance=0.05)
    run.metric("completed", reports[True].completed, direction="higher",
               tolerance=0.01)
    run.metric("wall_clock_s", cached_s, direction="lower", gate=False)
    run.table(
        "serving_cache_ablation",
        "Serving front-end -- HEATS score cache ablation (min of "
        f"{repeats} runs, {len(workload.requests)} requests)",
        ["score cache", "loop time (ms)", "hit rate", "completed", "ops/sec"],
        [
            ["on", f"{cached_s * 1e3:.1f}", f"{hit_rate:.2f}",
             reports[True].completed, f"{reports[True].ops_per_sec:.2f}"],
            ["off", f"{uncached_s * 1e3:.1f}", "-",
             reports[False].completed, f"{reports[False].ops_per_sec:.2f}"],
            ["speedup", f"{speedup:.2f}x", "", "", ""],
        ],
    )

    # The cache serves the same traffic...
    assert reports[True].offered == reports[False].offered
    assert reports[True].completed == reports[False].completed > 0
    # ...absorbs most scoring work (deterministic)...
    assert hit_rate > 0.5
    # ...and the min-of-N cached run beats the min-of-N uncached run.
    # (Typical margin is ~1.4x; the assertion is deliberately loose so a
    # noisy shared CI runner cannot flip it.)
    assert speedup > 1.0


# --------------------------------------------------------------------- #
# Federation shard sweep
# --------------------------------------------------------------------- #

#: fixed fleet size: heats_testbed scale 8 = 32 heterogeneous nodes.
FEDERATION_TOTAL_SCALE = 8
FEDERATION_SHARD_COUNTS = (1, 2, 4)


class _PlacementTimer:
    """Delegating scheduler wrapper timing every ``place`` call."""

    def __init__(self, scheduler):
        self._scheduler = scheduler
        self.place_time_s = 0.0
        self.place_calls = 0

    def __getattr__(self, name):
        return getattr(self._scheduler, name)

    def place(self, request, cluster, time_s):
        start = time.perf_counter()
        node = self._scheduler.place(request, cluster, time_s)
        self.place_time_s += time.perf_counter() - start
        self.place_calls += 1
        return node

    def reschedule(self, running, cluster, time_s):
        return self._scheduler.reschedule(running, cluster, time_s)

    @property
    def mean_place_latency_s(self) -> float:
        return self.place_time_s / self.place_calls if self.place_calls else 0.0


def _federation_run(workload, num_shards: int):
    """One serving run; returns (timer, report, federation stats or None)."""
    gateway_tenants = workload.tenants
    from repro.serving import RequestGateway as _Gateway

    if num_shards == 1:
        # Today's path: one HEATS scheduler over the whole 32-node fleet.
        cluster = Cluster.heats_testbed(scale=FEDERATION_TOTAL_SCALE)
        scheduler = HeatsScheduler.with_learned_models(
            cluster, seed=7, score_cache=PredictionScoreCache()
        )
        timer = _PlacementTimer(scheduler)
        loop = ServingLoop(cluster, timer, _Gateway(gateway_tenants))
        report = loop.run(workload.requests)
        return timer, report, None
    federation = Federation.build(
        num_shards=num_shards,
        shard_scale=FEDERATION_TOTAL_SCALE // num_shards,
        seed=7,
    )
    for tenant in gateway_tenants:
        if tenant.region is not None:
            federation.scheduler.register_tenant_region(tenant.name, tenant.region)
    timer = _PlacementTimer(federation.scheduler)
    loop = ServingLoop(federation.cluster, timer, _Gateway(gateway_tenants))
    report = loop.run(workload.requests)
    return timer, report, federation.stats


@pytest.mark.benchmark(group="serving")
def test_serving_federation_shard_sweep(bench, smoke):
    tenants = [
        Tenant(name="perf-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.1),
        Tenant(name="eco-tenant", rate_limit_rps=500.0, burst=200, energy_weight=0.9,
               region="eu-north"),
    ]
    offered_rps, duration_s, repeats = (40.0, 10.0, 2) if smoke else (120.0, 30.0, 3)
    workload = ServingWorkload.synthetic(
        tenants, _mix(), offered_rps=offered_rps, duration_s=duration_s, seed=29
    )

    best = {}
    reports = {}
    stats = {}
    for _ in range(repeats):
        for num_shards in FEDERATION_SHARD_COUNTS:
            timer, report, fed_stats = _federation_run(workload, num_shards)
            latency = timer.mean_place_latency_s
            if num_shards not in best or latency < best[num_shards][0]:
                best[num_shards] = (latency, timer.place_calls)
                reports[num_shards] = report
                stats[num_shards] = fed_stats

    rows = []
    for num_shards in FEDERATION_SHARD_COUNTS:
        latency, calls = best[num_shards]
        report = reports[num_shards]
        fed_stats = stats[num_shards]
        rows.append(
            [
                f"{num_shards}" + (" (single)" if num_shards == 1 else ""),
                4 * FEDERATION_TOTAL_SCALE,
                report.completed,
                calls,
                f"{latency * 1e6:.1f}",
                f"{report.ops_per_sec:.2f}",
                f"{fed_stats.affinity_hit_rate:.2f}" if fed_stats else "-",
                fed_stats.cross_shard_migrations if fed_stats else "-",
            ]
        )
    single, two, four = (reports[n] for n in FEDERATION_SHARD_COUNTS)
    run = bench("federation_sweep")
    place_speedup = (
        best[1][0] / best[4][0] if best[4][0] > 0 else float("inf")
    )
    # Per-place latency ratios are wall-clock: gated loosely.
    run.metric("place_latency_speedup_4shard", place_speedup,
               direction="higher", tolerance=0.50)
    run.metric("place_latency_us_1shard", best[1][0] * 1e6, direction="lower",
               gate=False)
    run.metric("place_latency_us_4shard", best[4][0] * 1e6, direction="lower",
               gate=False)
    run.metric("ops_per_sec", four.ops_per_sec, direction="higher",
               tolerance=0.05)
    run.metric("p50_latency_s", four.p50_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("p99_latency_s", four.p99_latency_s, direction="lower",
               tolerance=0.05)
    run.metric("node_seconds", 4 * FEDERATION_TOTAL_SCALE * four.horizon_s,
               direction="lower", tolerance=0.05)
    run.metric("completed", four.completed, direction="higher", tolerance=0.01)
    run.metric("affinity_hit_rate_4shard", stats[4].affinity_hit_rate,
               direction="higher", gate=False)
    run.table(
        "federation_sweep",
        "Federation shard sweep -- same workload, fixed 32-node fleet "
        f"(min of {repeats} runs, {len(workload.requests)} requests"
        f"{', smoke' if smoke else ''})",
        ["shards", "nodes", "completed", "place calls", "place latency (us)",
         "ops/sec", "affinity hits", "x-shard migr"],
        rows,
    )
    # Identical traffic is served at every shard count...
    assert single.offered == two.offered == four.offered > 0
    for report in (single, two, four):
        assert report.completed > 0
        assert report.admitted == report.completed + report.dropped
    # ...routing telemetry is consistent (every placement has a shard)...
    for num_shards in (2, 4):
        assert stats[num_shards].placements == sum(
            stats[num_shards].placements_by_shard.values()
        )
        assert len(stats[num_shards].placements_by_shard) <= num_shards
    # ...region seeding was exercised (eco-tenant carries a region)...
    for num_shards in (2, 4):
        assert stats[num_shards].region_seeded >= 1
    # ...and the two-level router stays cheap: since the array-native
    # capacity table answers whole-fleet candidate discovery with one
    # memoised vectorised mask, per-place cost at this 32-node fleet is
    # dominated by fixed scoring work, not fleet size — so sharding can
    # no longer be *cheaper* per call, but the shard-ranking hop must
    # stay a bounded fraction of a placement (it is O(shards), and a
    # regression to O(fleet) routing would blow well past this bound).
    assert best[4][0] <= best[1][0] * 1.5
