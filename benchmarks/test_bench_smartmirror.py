"""FIG8-9: Smart Mirror -- FPS and power per hardware composition.

Regenerates the Section VI corner points: the two-GTX1080 workstation
prototype runs the detection suite at about 21 FPS drawing about 400 W; the
optimised low-power edge composition reaches the 10 FPS / 50 W project
target; the intermediate 1x CPU + 2x GPU-SoC edge composition sits between
them.  Tracking quality (Kalman + Hungarian) is reported alongside so the
energy saving is shown not to break the use case.
"""

from __future__ import annotations

import pytest

from repro.usecases.smartmirror.pipeline import PipelineConfiguration, compare_configurations

FRAMES = 120
PAPER_WORKSTATION_FPS = 21.0
PAPER_WORKSTATION_POWER_W = 400.0
PAPER_TARGET_FPS = 10.0
PAPER_TARGET_POWER_W = 50.0


def run_all():
    configurations = [
        PipelineConfiguration.workstation_prototype(),
        PipelineConfiguration.edge_cpu_2gpu(),
        PipelineConfiguration.edge_low_power(),
    ]
    return compare_configurations(configurations, frames=FRAMES)


@pytest.mark.benchmark(group="fig8-9")
def test_smart_mirror_fps_power_per_composition(benchmark, report_table):
    reports = benchmark(run_all)

    rows = []
    for report in reports:
        rows.append(
            [
                report.configuration.name,
                f"{report.fps:.1f}",
                f"{report.power_w:.0f}",
                f"{report.fps_per_watt * 1000:.1f}",
                f"{report.tracking.mota:.2f}",
                f"{report.energy_per_frame_j:.1f}",
            ]
        )
    report_table(
        "fig8_9_smartmirror",
        "Section VI reproduction -- Smart Mirror pipeline per hardware composition "
        "(paper: 21 FPS @ 400 W prototype, 10 FPS @ 50 W target)",
        ["composition", "FPS", "power (W)", "FPS per kW", "MOTA", "J/frame"],
        rows,
    )

    by_name = {r.configuration.name: r for r in reports}
    workstation = by_name["workstation-2xGTX1080"]
    edge = by_name["edge-arm+gpu+fpga"]
    middle = by_name["edge-cpu+2gpu-soc"]

    assert workstation.fps == pytest.approx(PAPER_WORKSTATION_FPS, rel=0.15)
    assert workstation.power_w == pytest.approx(PAPER_WORKSTATION_POWER_W, rel=0.15)
    assert edge.fps >= PAPER_TARGET_FPS * 0.9
    assert edge.power_w < PAPER_TARGET_POWER_W
    # The optimised edge target is roughly an order of magnitude more
    # power-efficient than the prototype (the project's 10x energy ambition).
    assert edge.fps_per_watt > 4.5 * workstation.fps_per_watt
    # The intermediate composition sits between the two corner points in power.
    assert edge.power_w < middle.power_w < workstation.power_w
    # Tracking quality survives the move to the low-power target.
    assert edge.tracking.mota > 0.5
