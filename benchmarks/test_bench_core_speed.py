"""CORE SPEED: the overhauled discrete-event hot path vs the old one.

Not a paper figure: this benchmark measures the PR-5 hot-path overhaul
that lifts the serving simulator from a few thousand requests per sweep
to production-sized runs.  The same memory-bound flash-crowd workload --
a request stream whose aggregate memory demand saturates the cluster
while plenty of cores stay free, the regime where the old per-completion
full pending rescan degenerates to O(pending x nodes) -- is served twice
over identical fresh clusters:

1. **old-equivalent** (``fast_path=False``) -- fixed 0.5 s ingest ticks
   across the whole horizon and a full scheduler-driven rescan of the
   pending queue on every completion (the pre-PR implementation, kept as
   a switchable path precisely for this comparison);
2. **overhauled** (``fast_path=True``) -- event-driven ingest that only
   visits productive ticks, plus the capacity-gated retry index: each
   queued *shape* is gated once per completion against the cluster's
   per-bucket free-capacity oracle, so unplaceable requests cost a dict
   probe instead of a scheduler invocation.

Both paths must produce bit-identical serving reports; the overhauled
path must finish the 10k-request / 64-node run at least 3x faster.  A
third, *traced* run (same stream, ``fast_path=True`` plus an enabled
:class:`~repro.telemetry.trace.Tracer`) measures what request-scoped
tracing costs on the hot path, and a fourth, *profiled* run (an enabled
:class:`~repro.telemetry.profile.PhaseProfiler`) measures the host-time
profiler's overhead and proves its phase breakdown covers >= 90% of the
measured wall-clock.  Emitted to ``BENCH_core_speed.json``; the table
renders to ``benchmarks/results/core_speed.txt``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.serving.batching import BatchPolicy
from repro.serving.cache import PredictionScoreCache
from repro.serving.gateway import RequestGateway, ServingRequest, Tenant
from repro.serving.loop import ServingLoop
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.trace import Tracer

#: minimum wall-clock speedup the overhaul must show on the full run.
REQUIRED_SPEEDUP = 3.0
BATCH_POLICY = BatchPolicy(max_batch_size=4, max_delay_s=1.0, memory_bucket_gib=1.0)


def _tenants() -> List[Tenant]:
    # Admission wide open: this benchmark measures the placement hot
    # path, not the token buckets, so every offered request reaches it.
    return [
        Tenant(name="analytics", rate_limit_rps=10000.0, burst=8000,
               energy_weight=0.3),
        Tenant(name="training", rate_limit_rps=10000.0, burst=8000,
               energy_weight=0.6),
    ]


def memory_bound_flash_crowd(
    tenants: List[Tenant], count: int, duration_s: float, seed: int = 42
) -> List[ServingRequest]:
    """A request stream that saturates memory while cores stay free.

    Demands of 2-7 GiB against a testbed whose SoC nodes hold 4-8 GiB
    keep hundreds of batches queued with free cores everywhere -- the
    old full rescan then re-scores the whole cluster for every queued
    request on every completion.
    """
    rng = np.random.default_rng(seed)
    kinds = [WorkloadKind.MEMORY_BOUND, WorkloadKind.SCALAR, WorkloadKind.STREAMING]
    arrivals = np.sort(rng.uniform(0.0, duration_s, count))
    return [
        ServingRequest(
            request_id=f"r{index:05d}",
            tenant=tenants[index % len(tenants)].name,
            use_case=f"uc{index % 6}",
            arrival_s=float(arrival),
            workload=kinds[index % 3],
            gops=float(rng.uniform(20.0, 80.0)),
            cores=int(rng.choice([1, 2, 4])),
            memory_gib=float(rng.choice([2.0, 3.0, 5.0, 7.0])),
        )
        for index, arrival in enumerate(arrivals)
    ]


def timed_run(
    fast_path: bool,
    tenants: List[Tenant],
    requests: List[ServingRequest],
    scale: int,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Tuple[object, float]:
    """Serve the stream on a fresh cluster; returns (report, seconds)."""
    cluster = Cluster.heats_testbed(scale=scale)
    scheduler = HeatsScheduler.with_learned_models(
        cluster, seed=7, score_cache=PredictionScoreCache()
    )
    loop = ServingLoop(
        cluster,
        scheduler,
        RequestGateway(tenants),
        batch_policy=BATCH_POLICY,
        fast_path=fast_path,
        tracer=tracer,
        profiler=profiler,
    )
    start = time.perf_counter()
    report = loop.run(requests)
    return report, time.perf_counter() - start


def test_core_hot_path_speedup(bench, smoke):
    if smoke:
        count, duration_s, scale = 1500, 15.0, 4
    else:
        count, duration_s, scale = 10_000, 100.0, 16
    tenants = _tenants()
    requests = memory_bound_flash_crowd(tenants, count, duration_s)

    fast_report, fast_s = timed_run(True, tenants, requests, scale)
    old_report, old_s = timed_run(False, tenants, requests, scale)
    traced_report, traced_s = timed_run(
        True, tenants, requests, scale, tracer=Tracer(enabled=True)
    )
    profiler = PhaseProfiler(enabled=True)
    profiled_report, profiled_s = timed_run(
        True, tenants, requests, scale, profiler=profiler
    )

    # The overhaul must be invisible in the results: identical reports at
    # every level we render.
    assert fast_report.summary() == old_report.summary()
    assert fast_report.latencies_s == old_report.latencies_s
    assert fast_report.completions_s == old_report.completions_s
    assert fast_report.simulation.summary() == old_report.simulation.summary()
    assert fast_report.dropped == 0 and fast_report.rejected == 0
    # Tracing must not perturb the simulation, only observe it: the traced
    # summary is the untraced one plus its "trace" section.
    traced_summary = traced_report.summary()
    traced_summary.pop("trace")
    assert traced_summary == fast_report.summary()
    assert traced_report.trace_spans and fast_report.trace_spans is None
    # The host-time profiler likewise only observes: identical report,
    # and the top-level phases (ingest/simulate/rollup) account for at
    # least 90% of the measured wall-clock.
    assert profiled_report.summary() == fast_report.summary()
    profile_coverage = profiler.coverage(profiled_s)
    assert profile_coverage >= 0.9, (
        f"profiler phases cover only {profile_coverage:.1%} of wall-clock"
    )

    speedup = old_s / fast_s if fast_s > 0 else float("inf")
    tracing_overhead = traced_s / fast_s if fast_s > 0 else float("inf")
    profiling_overhead = profiled_s / fast_s if fast_s > 0 else float("inf")
    run = bench("core_speed")
    # Wall-clock ratios carry loose tolerances (shared-runner noise);
    # simulated quantities are deterministic and gated tightly.
    run.metric("speedup", speedup, direction="higher", tolerance=0.40)
    run.metric("tracing_overhead", tracing_overhead, direction="lower",
               tolerance=0.50, abs_tolerance=0.50)
    run.metric("profiling_overhead", profiling_overhead, direction="lower",
               tolerance=0.50, abs_tolerance=0.50)
    run.metric("profile_coverage", profile_coverage, direction="higher",
               tolerance=0.05)
    run.metric("wall_clock_s", fast_s, direction="lower", gate=False)
    run.metric("old_path_wall_clock_s", old_s, direction="lower", gate=False)
    run.metric("ops_per_sec", fast_report.ops_per_sec, direction="higher",
               tolerance=0.02)
    run.metric("p50_latency_s", fast_report.p50_latency_s, direction="lower",
               tolerance=0.02)
    run.metric("p99_latency_s", fast_report.p99_latency_s, direction="lower",
               tolerance=0.02)
    run.metric("node_seconds", 4 * scale * fast_report.horizon_s,
               direction="lower", tolerance=0.02)
    run.metric("completed", fast_report.completed, direction="higher",
               tolerance=0.01)
    run.attach_trace(traced_report.trace_summary())
    run.attach_profile(profiler)
    run.table(
        "core_speed",
        "Core hot-path overhaul: old-equivalent vs event-driven + retry index"
        + (" (smoke)" if smoke else ""),
        ["requests", "nodes", "batches", "old_s", "new_s", "speedup",
         "traced_overhead", "identical_reports"],
        [[
            len(requests),
            4 * scale,
            fast_report.batches,
            f"{old_s:.2f}",
            f"{fast_s:.2f}",
            f"{speedup:.2f}x",
            f"{tracing_overhead:.2f}x",
            "yes",
        ]],
    )
    if not smoke:
        # The acceptance bar: >= 3x on the 10k-request / 64-node sweep
        # (measured ~10x on the reference container; the margin absorbs
        # CI noise).
        assert speedup >= REQUIRED_SPEEDUP, (
            f"hot-path overhaul regressed: {speedup:.2f}x < {REQUIRED_SPEEDUP}x"
        )
