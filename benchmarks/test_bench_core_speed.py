"""CORE SPEED: the array-native discrete-event hot path, at two scales.

Not a paper figure: this benchmark tracks the serving simulator's core
hot path -- structured-array cluster capacity, the single event heap, and
the capacity-gated retry index -- on the memory-bound flash-crowd
workload (aggregate memory demand saturates the cluster while plenty of
cores stay free, the regime that degenerated the retired pre-PR-5 scan
path to O(pending x nodes)).

Two scale points:

1. **10k requests / 64 nodes** -- the historical acceptance point, kept
   in both tiers (it IS the ``--smoke`` lane point now, so CI's harness
   gate covers the array core directly).  The serve run repeats
   ``TIMING_REPS`` times; the wall-clock is the best repetition (the
   machine is a noisy shared runner) and every repetition must produce a
   bit-identical :class:`ServingReport` -- the determinism half of the
   old two-path equivalence check, which no longer has a second path to
   compare against.
2. **100k requests / 512 nodes** (full tier only) -- the scale point the
   array rebuild targets; a single serve run with gated throughput.

Speed is judged against the PR 8 pinned full-tier baseline for the
10k/64 point, frozen below as constants because the ``fast_path=False``
scan path was deleted and cannot be re-measured: ``speedup`` compares
against the retired scan path's pinned wall-clock and must stay >= 3x
(measured ~30x); ``speedup_vs_pr8_event_path`` compares against the PR 8
event-driven path's own pinned wall-clock and is reported ungated (a
ratio of wall-clocks from different machine states is a trend signal,
not a gateable number).

A *traced* run (enabled :class:`~repro.telemetry.trace.Tracer`) and a
*profiled* run (enabled :class:`~repro.telemetry.profile.PhaseProfiler`)
measure observability overhead on the 10k point; the profiler's phase
breakdown must cover >= 90% of the measured wall-clock.  Peak structured
-array bytes (cluster capacity table + placement-engine task arrays) are
reported per point as ungated memory metrics for ``benchmarks/trend.py``.
Emitted to ``BENCH_core_speed.json``; the table renders to
``benchmarks/results/core_speed.txt``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.serving.batching import BatchPolicy
from repro.serving.cache import PredictionScoreCache
from repro.serving.gateway import RequestGateway, ServingRequest, Tenant
from repro.serving.loop import ServingLoop
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.trace import Tracer

#: minimum wall-clock speedup over the retired scan path's pinned wall.
REQUIRED_SPEEDUP = 3.0
#: serve-run repetitions for the timed 10k point (best-of wins).
TIMING_REPS = 5
#: PR 8 pinned full-tier walls for the 10k/64 point
#: (``benchmarks/baselines/core_speed.json`` as of PR 8).  Frozen: the
#: ``fast_path=False`` scan path they timed no longer exists to re-run.
PR8_SCAN_PATH_WALL_S = 12.861284317999889
PR8_EVENT_PATH_WALL_S = 1.0380147490004674

BATCH_POLICY = BatchPolicy(max_batch_size=4, max_delay_s=1.0, memory_bucket_gib=1.0)


def _tenants() -> List[Tenant]:
    # Admission wide open: this benchmark measures the placement hot
    # path, not the token buckets, so every offered request reaches it.
    return [
        Tenant(name="analytics", rate_limit_rps=10000.0, burst=8000,
               energy_weight=0.3),
        Tenant(name="training", rate_limit_rps=10000.0, burst=8000,
               energy_weight=0.6),
    ]


def memory_bound_flash_crowd(
    tenants: List[Tenant], count: int, duration_s: float, seed: int = 42
) -> List[ServingRequest]:
    """A request stream that saturates memory while cores stay free.

    Demands of 2-7 GiB against a testbed whose SoC nodes hold 4-8 GiB
    keep hundreds of batches queued with free cores everywhere -- the
    regime where per-completion placement retries dominate, which the
    shape-bucketed retry index must keep off the critical path.
    """
    rng = np.random.default_rng(seed)
    kinds = [WorkloadKind.MEMORY_BOUND, WorkloadKind.SCALAR, WorkloadKind.STREAMING]
    arrivals = np.sort(rng.uniform(0.0, duration_s, count))
    return [
        ServingRequest(
            request_id=f"r{index:05d}",
            tenant=tenants[index % len(tenants)].name,
            use_case=f"uc{index % 6}",
            arrival_s=float(arrival),
            workload=kinds[index % 3],
            gops=float(rng.uniform(20.0, 80.0)),
            cores=int(rng.choice([1, 2, 4])),
            memory_gib=float(rng.choice([2.0, 3.0, 5.0, 7.0])),
        )
        for index, arrival in enumerate(arrivals)
    ]


def timed_run(
    tenants: List[Tenant],
    requests: List[ServingRequest],
    scale: int,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Tuple[object, float]:
    """Serve the stream on a fresh cluster; returns (report, seconds)."""
    cluster = Cluster.heats_testbed(scale=scale)
    scheduler = HeatsScheduler.with_learned_models(
        cluster, seed=7, score_cache=PredictionScoreCache()
    )
    loop = ServingLoop(
        cluster,
        scheduler,
        RequestGateway(tenants),
        batch_policy=BATCH_POLICY,
        tracer=tracer,
        profiler=profiler,
    )
    start = time.perf_counter()
    report = loop.run(requests)
    return report, time.perf_counter() - start


def _fingerprint(report) -> Tuple[object, ...]:
    """Everything two runs of the same stream must agree on, bit for bit."""
    return (
        report.summary(),
        report.latencies_s,
        report.completions_s,
        report.simulation.summary(),
        report.simulation.peak_array_bytes,
    )


def test_core_hot_path_speedup(bench, smoke):
    # The 10k/64 acceptance point runs in BOTH tiers (it is the smoke
    # point); the 100k/512 scale point rides only in the full tier.
    count, duration_s, scale = 10_000, 100.0, 16
    reps = 3 if smoke else TIMING_REPS
    tenants = _tenants()
    requests = memory_bound_flash_crowd(tenants, count, duration_s)

    runs = [timed_run(tenants, requests, scale) for _ in range(reps)]
    report = runs[0][0]
    wall_s = min(seconds for _, seconds in runs)
    # Determinism gate: with the scan path deleted, equivalence is now
    # asserted across independent repetitions -- every serve of the same
    # stream must produce a bit-identical report.
    reference = _fingerprint(report)
    for repeat, _ in runs[1:]:
        assert _fingerprint(repeat) == reference
    assert report.dropped == 0 and report.rejected == 0

    traced_report, traced_s = timed_run(
        tenants, requests, scale, tracer=Tracer(enabled=True)
    )
    profiler = PhaseProfiler(enabled=True)
    profiled_report, profiled_s = timed_run(
        tenants, requests, scale, profiler=profiler
    )
    # Tracing must not perturb the simulation, only observe it: the traced
    # summary is the untraced one plus its "trace" section.
    traced_summary = traced_report.summary()
    traced_summary.pop("trace")
    assert traced_summary == report.summary()
    assert traced_report.trace_spans and report.trace_spans is None
    # The host-time profiler likewise only observes: identical report,
    # and the top-level phases (ingest/simulate/rollup) account for at
    # least 90% of the measured wall-clock.
    assert profiled_report.summary() == report.summary()
    profile_coverage = profiler.coverage(profiled_s)
    assert profile_coverage >= 0.9, (
        f"profiler phases cover only {profile_coverage:.1%} of wall-clock"
    )

    speedup = PR8_SCAN_PATH_WALL_S / wall_s if wall_s > 0 else float("inf")
    vs_event_path = PR8_EVENT_PATH_WALL_S / wall_s if wall_s > 0 else float("inf")
    tracing_overhead = traced_s / wall_s if wall_s > 0 else float("inf")
    profiling_overhead = profiled_s / wall_s if wall_s > 0 else float("inf")
    run = bench("core_speed")
    # Wall-clock ratios carry loose tolerances (shared-runner noise);
    # simulated quantities are deterministic and gated tightly.
    run.metric("speedup", speedup, direction="higher", tolerance=0.40)
    run.metric("speedup_vs_pr8_event_path", vs_event_path, direction="higher",
               gate=False)
    run.metric("tracing_overhead", tracing_overhead, direction="lower",
               tolerance=0.50, abs_tolerance=0.50)
    run.metric("profiling_overhead", profiling_overhead, direction="lower",
               tolerance=0.50, abs_tolerance=0.50)
    run.metric("profile_coverage", profile_coverage, direction="higher",
               tolerance=0.05)
    run.metric("wall_clock_s", wall_s, direction="lower", gate=False)
    run.metric("ops_per_sec", report.ops_per_sec, direction="higher",
               tolerance=0.02)
    run.metric("p50_latency_s", report.p50_latency_s, direction="lower",
               tolerance=0.02)
    run.metric("p99_latency_s", report.p99_latency_s, direction="lower",
               tolerance=0.02)
    run.metric("node_seconds", 4 * scale * report.horizon_s,
               direction="lower", tolerance=0.02)
    run.metric("completed", report.completed, direction="higher",
               tolerance=0.01)
    # Memory, bounded honestly: peak structured-array bytes (capacity
    # table + placement-engine task arrays), ungated trend metric.
    run.metric("peak_array_bytes", report.simulation.peak_array_bytes,
               direction="lower", gate=False)
    run.attach_trace(traced_report.trace_summary())
    run.attach_profile(profiler)

    rows = [[
        len(requests),
        4 * scale,
        report.batches,
        f"{wall_s:.2f}",
        f"{speedup:.1f}x",
        f"{vs_event_path:.2f}x",
        f"{report.simulation.peak_array_bytes / 2**20:.2f}",
        "yes",
    ]]

    scale_wall_s = None
    if not smoke:
        # The scale point the array rebuild targets: 100k requests on 512
        # nodes, heavier saturation, one serve run.  It must complete and
        # its throughput is gated like the 10k point's.
        scale_report, scale_wall_s = timed_run(
            tenants,
            memory_bound_flash_crowd(tenants, 100_000, 250.0),
            128,
        )
        assert scale_report.dropped == 0 and scale_report.rejected == 0
        run.metric("scale100k_ops_per_sec", scale_report.ops_per_sec,
                   direction="higher", tolerance=0.02)
        run.metric("scale100k_completed", scale_report.completed,
                   direction="higher", tolerance=0.01)
        run.metric("scale100k_p99_latency_s", scale_report.p99_latency_s,
                   direction="lower", tolerance=0.02)
        run.metric("scale100k_wall_clock_s", scale_wall_s, direction="lower",
                   gate=False)
        run.metric("scale100k_peak_array_bytes",
                   scale_report.simulation.peak_array_bytes,
                   direction="lower", gate=False)
        rows.append([
            100_000,
            512,
            scale_report.batches,
            f"{scale_wall_s:.2f}",
            "-",
            "-",
            f"{scale_report.simulation.peak_array_bytes / 2**20:.2f}",
            "-",
        ])

    run.table(
        "core_speed",
        "Array-native core vs the PR 8 pinned full-tier baseline "
        f"(vs_pr8_scan = retired fast_path=False scan wall {PR8_SCAN_PATH_WALL_S:.2f}s, "
        f"vs_pr8_event = PR 8 event-path wall {PR8_EVENT_PATH_WALL_S:.2f}s; "
        f"wall_s = best of {reps})" + (" (smoke)" if smoke else ""),
        ["requests", "nodes", "batches", "wall_s", "vs_pr8_scan",
         "vs_pr8_event", "peak_array_mib", "identical_reports"],
        rows,
    )
    # The acceptance bar: the 10k-request / 64-node point must hold a
    # >= 3x wall-clock improvement over the PR 8 pinned scan-path wall
    # (measured ~30x; the margin absorbs runner noise).
    assert speedup >= REQUIRED_SPEEDUP, (
        f"hot-path regressed: {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"vs the retired scan path's pinned wall"
    )
