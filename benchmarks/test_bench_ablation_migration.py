"""ABL-MIGR: ablation of HEATS's periodic re-scheduling / migration.

Section V: "we recompute our scheduling decision every now and then.  When a
better fit than the current host of a task is found, the scheduler performs
a migration."  The ablation compares HEATS with its migration mechanism
active against the same scheduler with migrations effectively disabled
(an improvement threshold no candidate can reach), on a stream of
long-running, energy-weighted tasks where initial placements become stale
as better hosts free up.

Expected shape: migrations do happen, they lower the energy attributable to
task execution (work moves onto more efficient hosts mid-flight), and they
cost a bounded amount of turnaround (the checkpoint/transfer/restart
downtime).
"""

from __future__ import annotations

import pytest

from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsConfig, HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import TaskRequest, WorkloadGenerator

NUM_TASKS = 50
GOPS_SCALE = 8.0  # long-running tasks so mid-flight migration can pay off


def _fresh_cluster() -> Cluster:
    return Cluster.heats_testbed(scale=2)


def _requests():
    base = WorkloadGenerator(seed=31, mean_interarrival_s=4.0, energy_weight=1.0).generate(NUM_TASKS)
    return [
        TaskRequest(
            task_id=r.task_id,
            arrival_s=r.arrival_s,
            workload=r.workload,
            gops=r.gops * GOPS_SCALE,
            cores=r.cores,
            memory_gib=r.memory_gib,
            energy_weight=1.0,
        )
        for r in base
    ]


def run_ablation():
    models = ProfilingCampaign(_fresh_cluster(), noise_fraction=0.03, seed=31).run().fit()
    requests = _requests()
    configs = {
        "heats+migration": HeatsConfig(rescheduling_interval_s=60.0),
        "heats-no-migration": HeatsConfig(migration_improvement_threshold=0.99),
    }
    results = {}
    for name, config in configs.items():
        simulator = ClusterSimulator(
            _fresh_cluster(), HeatsScheduler(models, config=config), rescheduling_interval_s=60.0
        )
        results[name] = simulator.run(requests)
    return results


@pytest.mark.benchmark(group="ablation-migration")
def test_ablation_heats_migration(benchmark, report_table):
    results = benchmark(run_ablation)

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.num_migrations,
                f"{result.task_energy_j / 1e3:.1f}",
                f"{result.total_energy_j / 1e3:.1f}",
                f"{result.mean_turnaround_s:.0f}",
            ]
        )
    report_table(
        "ablation_migration",
        "Ablation -- HEATS periodic re-scheduling / migration on a long-running, "
        "energy-weighted task stream",
        ["configuration", "migrations", "task energy (kJ)", "total energy (kJ)", "mean turnaround (s)"],
        rows,
    )

    migrating = results["heats+migration"]
    static = results["heats-no-migration"]
    assert len(migrating.completed) == len(static.completed) == NUM_TASKS
    # The mechanism actually fires in one configuration and not the other.
    assert migrating.num_migrations > 0
    assert static.num_migrations == 0
    # Migrating work onto better hosts lowers task energy...
    assert migrating.task_energy_j < static.task_energy_j
    # ...at a bounded turnaround cost from the migration downtime.
    assert migrating.mean_turnaround_s <= static.mean_turnaround_s * 1.10
