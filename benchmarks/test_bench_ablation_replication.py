"""ABL-REPL: ablation of the selective-replication fault-tolerance policy.

Section I motivates "energy-efficient selective replication where only the
most reliability-critical tasks will be replicated" on diverse processing
elements.  The ablation sweeps the replication policy (none / selective /
full / triple-critical) under fault injection and reports detection
coverage (overall and for critical tasks) against the energy overhead,
showing the trade-off the selective policy is designed to win: near-full
coverage of critical tasks at a fraction of full replication's energy cost.
"""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.runtime.devices import build_devices
from repro.runtime.fault_tolerance import FaultInjector, ReplicationPolicy, ResilientExecutor
from repro.runtime.graph import TaskGraph
from repro.runtime.task import make_task

POLICIES = (
    ReplicationPolicy.NONE,
    ReplicationPolicy.SELECTIVE,
    ReplicationPolicy.FULL,
    ReplicationPolicy.TRIPLE_CRITICAL,
)
NUM_STAGES = 30
FAULT_PROBABILITY = 0.15


def build_workload() -> TaskGraph:
    """A pipeline where every third stage is reliability-critical."""
    graph = TaskGraph()
    for index in range(NUM_STAGES):
        graph.add_task(
            make_task(
                f"stage-{index}",
                workload=WorkloadKind.DATA_PARALLEL if index % 2 else WorkloadKind.DNN_INFERENCE,
                gops=80.0 + 10 * (index % 5),
                inputs=[f"d{index - 1}"] if index else [],
                outputs=[f"d{index}"],
                reliability_critical=(index % 3 == 0),
            )
        )
    return graph


def run_ablation():
    results = {}
    for policy in POLICIES:
        executor = ResilientExecutor(
            build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"]),
            policy=policy,
            injector=FaultInjector(fault_probability=FAULT_PROBABILITY, systematic_fraction=0.2, seed=77),
        )
        results[policy] = executor.execute(build_workload())
    return results


@pytest.mark.benchmark(group="ablation-replication")
def test_ablation_selective_replication(benchmark, report_table):
    results = benchmark(run_ablation)

    baseline_energy = results[ReplicationPolicy.NONE].total_energy_j
    rows = []
    for policy in POLICIES:
        report = results[policy]
        rows.append(
            [
                policy.value,
                f"{report.detection_coverage:.2f}",
                f"{report.critical_coverage():.2f}",
                f"{report.total_energy_j / baseline_energy:.2f}x",
                report.injected_faults,
            ]
        )
    report_table(
        "ablation_replication",
        "Ablation -- replication policy vs fault-detection coverage and energy overhead",
        ["policy", "coverage (all)", "coverage (critical)", "energy vs none", "injected faults"],
        rows,
    )

    none = results[ReplicationPolicy.NONE]
    selective = results[ReplicationPolicy.SELECTIVE]
    full = results[ReplicationPolicy.FULL]

    assert none.detection_coverage == 0.0
    # Selective replication covers the critical tasks...
    assert selective.critical_coverage() > 0.7
    # ...at an energy overhead well below full replication.
    assert none.total_energy_j < selective.total_energy_j < full.total_energy_j
    overhead_selective = selective.total_energy_j / none.total_energy_j
    overhead_full = full.total_energy_j / none.total_energy_j
    assert overhead_selective < 0.7 * overhead_full
    # Full replication covers (nearly) everything.
    assert full.detection_coverage > 0.8
