"""TAB-GOALS: the project-goal table of Section VII.

LEGaTO's final-year targets are 10x energy, 10x security, 5x reliability
and 5x productivity improvements over an un-optimised baseline.  The
benchmark runs the integrated stack (energy-aware heterogeneous scheduling,
FPGA undervolting, async task checkpointing, selective replication, enclave
security, single-source task annotations) against the baseline deployment on
the reference ML-inference workload and reports achieved-vs-target factors.
"""

from __future__ import annotations

import pytest

from repro.core.config import LegatoConfig
from repro.core.ecosystem import LegatoSystem
from repro.core.goals import PROJECT_TARGETS


def evaluate():
    system = LegatoSystem(LegatoConfig.default())
    return system.evaluate_goals(num_batches=6)


@pytest.mark.benchmark(group="goals")
def test_project_goal_dashboard(benchmark, report_table):
    report = benchmark(evaluate)

    rows = []
    for assessment in report.assessments:
        rows.append(
            [
                assessment.dimension,
                f"{assessment.target_factor:.0f}x",
                f"{assessment.achieved_factor:.1f}x",
                "yes" if assessment.met else "in progress",
                assessment.metric,
            ]
        )
    report_table(
        "tab_goals",
        "Section VII reproduction -- project goals (targets are end-of-project ambitions)",
        ["dimension", "target", "achieved (simulated)", "met", "metric"],
        rows,
    )

    assert set(report.dimensions) == set(PROJECT_TARGETS)
    # Energy: heterogeneous energy-aware execution plus undervolting yields a
    # multi-x saving over CPU-only performance scheduling (the 10x figure is
    # the end-of-project ambition; the integrated simulation reaches ~5x).
    assert report.assessment("energy").achieved_factor > 3.0
    # Security: enclave protection removes most sensitive-data exposure.
    assert report.assessment("security").achieved_factor >= 10.0
    # Reliability: async checkpointing sustains several-times smaller MTBF.
    assert report.assessment("reliability").achieved_factor > 5.0
    # Productivity: single-source annotations beat per-target manual ports.
    assert report.assessment("productivity").achieved_factor > 5.0
