"""TAB-CKPT: async-vs-initial speedups and the sustainable-MTBF estimate.

Regenerates the Section IV text numbers: the optimised (async) FTI reduces
checkpoint overhead by 12.05x and recovery overhead by 5.13x versus the
initial implementation, and -- via the checkpoint efficiency model -- can
sustain execution on systems with roughly 7x smaller MTBF at the same
application overhead.
"""

from __future__ import annotations

import pytest

from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import run_fig6_point
from repro.checkpoint.mtbf import CheckpointEfficiencyModel, sustainable_mtbf_ratio

PAPER_CKPT_SPEEDUP = 12.05
PAPER_RECOVER_SPEEDUP = 5.13
PAPER_MTBF_FACTOR = 7.0


def measure():
    initial = run_fig6_point(4, 16.0, CheckpointStrategy.INITIAL)
    asynchronous = run_fig6_point(4, 16.0, CheckpointStrategy.ASYNC)
    ckpt_speedup = initial.checkpoint_time_s / asynchronous.checkpoint_time_s
    recover_speedup = initial.recover_time_s / asynchronous.recover_time_s
    mtbf_factor = sustainable_mtbf_ratio(
        CheckpointEfficiencyModel(initial.checkpoint_time_s, initial.recover_time_s),
        CheckpointEfficiencyModel(asynchronous.checkpoint_time_s, asynchronous.recover_time_s),
        overhead_budget=0.05,
    )
    return ckpt_speedup, recover_speedup, mtbf_factor


@pytest.mark.benchmark(group="tab-ckpt")
def test_tab_checkpoint_speedups_and_mtbf(benchmark, report_table):
    ckpt_speedup, recover_speedup, mtbf_factor = benchmark(measure)

    report_table(
        "tab_ckpt_speedup",
        "Section IV reproduction -- async vs initial FTI implementation",
        ["metric", "paper", "measured"],
        [
            ["checkpoint overhead reduction", f"{PAPER_CKPT_SPEEDUP:.2f}x", f"{ckpt_speedup:.2f}x"],
            ["recovery overhead reduction", f"{PAPER_RECOVER_SPEEDUP:.2f}x", f"{recover_speedup:.2f}x"],
            ["sustainable MTBF reduction", f"{PAPER_MTBF_FACTOR:.1f}x", f"{mtbf_factor:.1f}x"],
        ],
    )

    assert ckpt_speedup == pytest.approx(PAPER_CKPT_SPEEDUP, rel=0.35)
    assert recover_speedup == pytest.approx(PAPER_RECOVER_SPEEDUP, rel=0.35)
    # The MTBF estimate is first-order; require the right order of magnitude.
    assert 3.5 < mtbf_factor < 20.0
