"""JSON benchmark harness: machine-readable results + a perf-regression gate.

Every ``test_bench_*`` run records its headline numbers through a
:class:`BenchRun` instead of hand-pasting them into text tables.  The run
emits ``BENCH_<name>.json`` at the repository root -- metrics (ops/sec,
wall-clock, p50/p99 latency, node-seconds, ...), telemetry counters,
trace-stage breakdowns, and the human-readable tables -- and the
``benchmarks/results/*.txt`` files are *rendered from that JSON*, so the
text tables can never drift from the measured numbers again.

Pinned baselines live in ``benchmarks/baselines/<name>.json`` (committed),
keyed by tier (``smoke`` for CI, ``full`` for the local acceptance runs).
``python benchmarks/harness.py check --tier smoke`` compares every emitted
BENCH file against its pinned baseline and exits non-zero when any *gated*
metric regresses beyond its per-metric tolerance -- that step is CI's
perf-regression gate.

Regression rule per gated metric (direction ``higher`` or ``lower``)::

    margin = max(tolerance * |baseline|, abs_tolerance)
    regressed   (higher)  iff  value < baseline - margin
    regressed   (lower)   iff  value > baseline + margin

Deterministic simulated metrics carry tight tolerances (a few percent);
wall-clock ratios (hot-path speedup) carry loose ones so a noisy shared
runner cannot flip the build.

CLI::

    python benchmarks/harness.py check [--tier smoke|full] [names...]
    python benchmarks/harness.py pin   [names...]   # adopt current numbers
    python benchmarks/harness.py render [names...]  # regenerate results/*.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BenchRun",
    "format_table",
    "render_tables",
    "load_bench",
    "load_baseline",
    "compare_metrics",
    "check",
    "pin",
    "render",
    "main",
    "DEFAULT_TOLERANCE",
]

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"
SCHEMA_VERSION = 1

#: default relative tolerance for gated metrics.
DEFAULT_TOLERANCE = 0.10


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table.

    Args:
        headers: column headers.
        rows: row cells (stringified).

    Returns:
        The rendered table (no trailing newline).
    """
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def bench_path(name: str, bench_dir: Path = REPO_ROOT) -> Path:
    """Repo-root location of one run's JSON artefact.

    Args:
        name: benchmark name (e.g. ``core_speed``).
        bench_dir: directory the BENCH files live in.

    Returns:
        The ``BENCH_<name>.json`` path.
    """
    return bench_dir / f"BENCH_{name}.json"


def baseline_path(name: str, baselines_dir: Path = BASELINES_DIR) -> Path:
    """Committed location of one benchmark's pinned baseline.

    Args:
        name: benchmark name.
        baselines_dir: directory the baselines live in.

    Returns:
        The ``baselines/<name>.json`` path.
    """
    return baselines_dir / f"{name}.json"


class BenchRun:
    """One benchmark run accumulating metrics, tables, and telemetry.

    Build one per ``test_bench_*`` test (the ``bench`` fixture does), call
    :meth:`metric` / :meth:`table` / :meth:`attach_counters` /
    :meth:`attach_trace` / :meth:`attach_profile` as results land, then
    :meth:`finish` writes the
    ``BENCH_<name>.json`` artefact and renders the text tables from it.
    """

    def __init__(self, name: str, tier: str = "full") -> None:
        """Start a run.

        Args:
            name: benchmark name; determines the artefact filename.
            tier: ``smoke`` (CI-reduced load) or ``full``.
        """
        self.name = name
        self.tier = tier
        self._start = time.perf_counter()
        self.metrics: Dict[str, Dict[str, Any]] = {}
        self.tables: List[Dict[str, Any]] = []
        self.counters: Optional[Dict[str, float]] = None
        self.trace: Optional[Dict[str, Any]] = None
        self.profile: Optional[Dict[str, Any]] = None

    def metric(
        self,
        key: str,
        value: float,
        direction: str = "higher",
        tolerance: float = DEFAULT_TOLERANCE,
        abs_tolerance: float = 0.0,
        gate: bool = True,
    ) -> None:
        """Record one named metric.

        Args:
            key: metric name (e.g. ``ops_per_sec``).
            value: measured value.
            direction: ``higher`` or ``lower`` -- which way is better.
            tolerance: relative regression tolerance for the gate.
            abs_tolerance: absolute tolerance floor (wins when larger than
                ``tolerance * |baseline|``; useful for near-zero metrics).
            gate: whether the CI gate compares this metric; False records
                it as informational only.
        """
        if direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")
        self.metrics[key] = {
            "value": float(value),
            "direction": direction,
            "tolerance": float(tolerance),
            "abs_tolerance": float(abs_tolerance),
            "gate": bool(gate),
        }

    def table(
        self,
        name: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> str:
        """Record one human-readable table (rendered to results/<name>.txt).

        Args:
            name: results-file stem.
            title: table title line.
            headers: column headers.
            rows: row cells.

        Returns:
            The rendered table text (also printed by :meth:`finish`).
        """
        rows = [[str(cell) for cell in row] for row in rows]
        self.tables.append(
            {"name": name, "title": title, "headers": list(headers), "rows": rows}
        )
        return f"{title}\n{format_table(headers, rows)}\n"

    def attach_counters(self, counters: Mapping[str, float]) -> None:
        """Attach telemetry-registry counter totals to the artefact.

        Args:
            counters: counter name -> total (``MetricsRegistry.counter_values``).
        """
        self.counters = {name: float(value) for name, value in sorted(counters.items())}

    def attach_trace(self, trace_summary: Any) -> None:
        """Attach a trace-stage breakdown to the artefact.

        Args:
            trace_summary: a :class:`~repro.telemetry.trace.TraceSummary`
                (or its ``to_dict()`` form).
        """
        if trace_summary is None:
            return
        self.trace = (
            trace_summary.to_dict() if hasattr(trace_summary, "to_dict") else dict(trace_summary)
        )

    def attach_profile(self, profile: Any) -> None:
        """Attach a host-time phase breakdown to the artefact.

        Args:
            profile: a :meth:`~repro.telemetry.profile.PhaseProfiler.report`
                dict (``{"phases": ..., "top_level_s": ...}``), or a
                :class:`~repro.telemetry.profile.PhaseProfiler` itself
                (its report is taken).  None is ignored.
        """
        if profile is None:
            return
        self.profile = (
            profile.report() if hasattr(profile, "report") else dict(profile)
        )

    def finish(
        self,
        bench_dir: Path = REPO_ROOT,
        quiet: bool = False,
        results_dir: Path = RESULTS_DIR,
    ) -> Dict[str, Any]:
        """Write ``BENCH_<name>.json`` and render its text tables.

        The harness wall-clock (everything between construction and this
        call) is recorded as ``harness_wall_clock_s``; per-metric
        speedups against the pinned baseline (same tier) land in
        ``speedup_vs_baseline`` (ratio normalised so > 1.0 is better).

        Args:
            bench_dir: directory to write the JSON artefact into.
            quiet: suppress printing the rendered tables.
            results_dir: directory the text tables render into.

        Returns:
            The written payload.
        """
        payload: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "tier": self.tier,
            "harness_wall_clock_s": round(time.perf_counter() - self._start, 4),
            "metrics": self.metrics,
            "counters": self.counters,
            "trace": self.trace,
            "profile": self.profile,
            "tables": self.tables,
            "speedup_vs_baseline": None,
            "baseline_tier": None,
        }
        baseline = load_baseline(self.name)
        entry = baseline.get(self.tier) if baseline else None
        if entry:
            payload["baseline_tier"] = self.tier
            payload["speedup_vs_baseline"] = speedups_vs_baseline(
                self.metrics, entry.get("metrics", {})
            )
        path = bench_path(self.name, bench_dir)
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        rendered = render_tables(payload, results_dir=results_dir)
        if not quiet:
            for text in rendered.values():
                print("\n" + text)
        return payload


def render_tables(payload: Mapping[str, Any], results_dir: Path = RESULTS_DIR) -> Dict[str, str]:
    """Render a payload's tables to ``results/<name>.txt`` files.

    Args:
        payload: a BENCH payload (the JSON is the source of truth).
        results_dir: directory the text tables are written into.

    Returns:
        Results-file stem -> rendered text, for each table.
    """
    rendered: Dict[str, str] = {}
    results_dir.mkdir(exist_ok=True)
    for spec in payload.get("tables", []):
        text = f"{spec['title']}\n{format_table(spec['headers'], spec['rows'])}\n"
        (results_dir / f"{spec['name']}.txt").write_text(text)
        rendered[spec["name"]] = text
    return rendered


def speedups_vs_baseline(
    metrics: Mapping[str, Mapping[str, Any]],
    baseline_metrics: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Optional[float]]:
    """Per-metric improvement ratios against pinned values.

    Args:
        metrics: the current run's metric records.
        baseline_metrics: the pinned metric records.

    Returns:
        Metric name -> ratio normalised so values > 1.0 mean *better*
        than the baseline (current/baseline for higher-is-better metrics,
        inverted for lower-is-better); None when undefined (zero pin).
    """
    ratios: Dict[str, Optional[float]] = {}
    for key, record in metrics.items():
        pinned = baseline_metrics.get(key)
        if pinned is None:
            continue
        value, base = float(record["value"]), float(pinned["value"])
        if record["direction"] == "higher":
            ratios[key] = value / base if base else None
        else:
            ratios[key] = base / value if value else None
    return ratios


def compare_metrics(
    current: Mapping[str, Any], baseline_entry: Mapping[str, Any]
) -> List[str]:
    """Find gated metrics that regressed beyond tolerance.

    Args:
        current: a BENCH payload (``metrics`` holds the live records).
        baseline_entry: the pinned tier entry (``{"metrics": {...}}``).

    A gated metric missing from the pinned baseline is itself a hard
    failure: silently skipping it would let a new (or renamed) gated
    metric drift unchecked until someone happened to re-pin.  The
    failure line carries the ``pin`` command that adopts it.

    Returns:
        One human-readable line per regression (empty = gate passes).
    """
    failures: List[str] = []
    pinned_metrics = baseline_entry.get("metrics", {})
    for key, record in current.get("metrics", {}).items():
        if not record.get("gate", False):
            continue
        pinned = pinned_metrics.get(key)
        if pinned is None:
            name = current.get("name", "?")
            failures.append(
                f"{name}:{key} is gated but missing from the pinned baseline "
                f"-- adopt it with `python benchmarks/harness.py pin {name}`"
            )
            continue
        value = float(record["value"])
        base = float(pinned["value"])
        margin = max(float(record["tolerance"]) * abs(base), float(record["abs_tolerance"]))
        direction = record["direction"]
        if direction == "higher" and value < base - margin:
            failures.append(
                f"{current.get('name', '?')}:{key} regressed: {value:.6g} < "
                f"baseline {base:.6g} - margin {margin:.6g} (higher is better)"
            )
        elif direction == "lower" and value > base + margin:
            failures.append(
                f"{current.get('name', '?')}:{key} regressed: {value:.6g} > "
                f"baseline {base:.6g} + margin {margin:.6g} (lower is better)"
            )
    return failures


def load_bench(name: str, bench_dir: Path = REPO_ROOT) -> Optional[Dict[str, Any]]:
    """Read one emitted BENCH payload.

    Args:
        name: benchmark name.
        bench_dir: directory the BENCH files live in.

    Returns:
        The parsed payload, or None when the file does not exist.
    """
    path = bench_path(name, bench_dir)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def load_baseline(name: str, baselines_dir: Path = BASELINES_DIR) -> Optional[Dict[str, Any]]:
    """Read one pinned baseline (all tiers).

    Args:
        name: benchmark name.
        baselines_dir: directory the baselines live in.

    Returns:
        Tier -> pinned entry mapping, or None when nothing is pinned.
    """
    path = baseline_path(name, baselines_dir)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def _known_names(bench_dir: Path, baselines_dir: Path) -> List[str]:
    names = {p.stem[len("BENCH_"):] for p in bench_dir.glob("BENCH_*.json")}
    names.update(p.stem for p in baselines_dir.glob("*.json"))
    return sorted(names)


def check(
    names: Optional[Sequence[str]] = None,
    tier: Optional[str] = None,
    bench_dir: Path = REPO_ROOT,
    baselines_dir: Path = BASELINES_DIR,
) -> Tuple[int, List[str]]:
    """Gate every emitted BENCH payload against its pinned baseline.

    Args:
        names: benchmark names to check; None checks every name with both
            an emitted payload and a pinned baseline.
        tier: only check payloads of this tier (``smoke``/``full``); a
            payload whose tier has no pinned entry is skipped (reported).
        bench_dir: directory the BENCH files live in.
        baselines_dir: directory the baselines live in.

    Returns:
        ``(compared, failures)``: how many metric comparisons ran, and one
        line per regression.
    """
    failures: List[str] = []
    compared = 0
    for name in names or _known_names(bench_dir, baselines_dir):
        current = load_bench(name, bench_dir)
        if current is None:
            if names:
                failures.append(f"{name}: no BENCH_{name}.json emitted")
            continue
        if tier is not None and current.get("tier") != tier:
            print(f"[gate] {name}: tier {current.get('tier')!r} != {tier!r}, skipped")
            continue
        baseline = load_baseline(name, baselines_dir)
        entry = baseline.get(current.get("tier", "")) if baseline else None
        if entry is None:
            print(f"[gate] {name}: no {current.get('tier')!r} baseline pinned, skipped")
            continue
        gated = [k for k, r in current.get("metrics", {}).items() if r.get("gate")]
        compared += len(gated)
        failures.extend(compare_metrics(current, entry))
        print(f"[gate] {name} ({current.get('tier')}): {len(gated)} gated metrics compared")
    return compared, failures


def pin(
    names: Optional[Sequence[str]] = None,
    bench_dir: Path = REPO_ROOT,
    baselines_dir: Path = BASELINES_DIR,
) -> List[str]:
    """Adopt the current BENCH payloads as the pinned baselines.

    Each payload is pinned under its own tier, preserving other tiers
    already in the baseline file.

    Args:
        names: benchmark names to pin; None pins every emitted payload.
        bench_dir: directory the BENCH files live in.
        baselines_dir: directory the baselines are written into.

    Returns:
        The names actually pinned.
    """
    baselines_dir.mkdir(exist_ok=True)
    pinned: List[str] = []
    for name in names or sorted(
        p.stem[len("BENCH_"):] for p in bench_dir.glob("BENCH_*.json")
    ):
        current = load_bench(name, bench_dir)
        if current is None:
            continue
        baseline = load_baseline(name, baselines_dir) or {}
        baseline[current.get("tier", "full")] = {
            "pinned_from_schema": current.get("schema"),
            "metrics": current.get("metrics", {}),
        }
        baseline_path(name, baselines_dir).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        pinned.append(name)
    return pinned


def render(
    names: Optional[Sequence[str]] = None,
    bench_dir: Path = REPO_ROOT,
    results_dir: Path = RESULTS_DIR,
) -> List[str]:
    """Regenerate ``results/*.txt`` from the emitted JSON payloads.

    Args:
        names: benchmark names to render; None renders every payload.
        bench_dir: directory the BENCH files live in.
        results_dir: directory the text tables are written into.

    Returns:
        The results-file stems rendered.
    """
    rendered: List[str] = []
    for name in names or sorted(
        p.stem[len("BENCH_"):] for p in bench_dir.glob("BENCH_*.json")
    ):
        payload = load_bench(name, bench_dir)
        if payload is None:
            continue
        rendered.extend(render_tables(payload, results_dir))
    return rendered


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``check`` / ``pin`` / ``render``).

    Args:
        argv: argument vector; None uses ``sys.argv[1:]``.

    Returns:
        Process exit code (1 when the gate trips, else 0).
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    for command in ("check", "pin", "render"):
        p = sub.add_parser(command)
        p.add_argument("names", nargs="*", help="benchmark names (default: all)")
        if command == "check":
            p.add_argument("--tier", choices=("smoke", "full"), default=None)
    args = parser.parse_args(argv)

    if args.command == "check":
        compared, failures = check(args.names or None, tier=args.tier)
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if failures:
            return 1
        if compared == 0:
            print("[gate] nothing compared (no emitted payloads with pinned baselines)")
        else:
            print(f"[gate] OK: {compared} gated metric(s) within tolerance")
        return 0
    if args.command == "pin":
        pinned = pin(args.names or None)
        print(f"pinned: {', '.join(pinned) if pinned else '(nothing)'}")
        return 0
    rendered = render(args.names or None)
    print(f"rendered: {', '.join(rendered) if rendered else '(nothing)'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
