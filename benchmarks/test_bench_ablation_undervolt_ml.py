"""ABL-UV-ML: undervolting an ML accelerator below the guardband.

Section III.C argues that, because ML models are inherently resilient to
bit-flips, aggressive undervolting can push FPGA-based inference below the
voltage guardband and keep most of the critical-region power saving with
negligible accuracy loss.  The ablation sweeps the operating voltage of the
BRAM-resident quantised model, with and without the low-cost weight-clipping
mitigation, and reports accuracy and power saving per operating point.
"""

from __future__ import annotations

import pytest

from repro.undervolting.mlresilience import UndervoltedInferenceStudy
from repro.undervolting.voltage import VoltageRegion


def run_study():
    study = UndervoltedInferenceStudy(platform="VC707", n_samples=1500, seed=13)
    raw = study.sweep(step_v=0.02, mitigate=False)
    mitigated = study.sweep(step_v=0.02, mitigate=True)
    operating_point = study.recommended_operating_point(max_accuracy_drop=0.01)
    return study, raw, mitigated, operating_point


@pytest.mark.benchmark(group="ablation-undervolt-ml")
def test_ablation_undervolted_inference(benchmark, report_table):
    study, raw, mitigated, operating_point = benchmark(run_study)

    rows = []
    for raw_point, mitigated_point in zip(raw, mitigated):
        rows.append(
            [
                f"{raw_point.voltage_v:.2f}",
                raw_point.region.value,
                f"{100 * raw_point.power_saving_fraction:.0f}",
                f"{raw_point.accuracy:.3f}",
                f"{mitigated_point.accuracy:.3f}",
            ]
        )
    report_table(
        "ablation_undervolt_ml",
        f"Section III.C reproduction -- undervolted DNN inference on VC707 "
        f"(baseline accuracy {study.baseline_accuracy:.3f}; recommended operating point "
        f"{operating_point.voltage_v:.2f} V saving {100 * operating_point.power_saving_fraction:.0f} % BRAM power)",
        ["VCCBRAM (V)", "region", "power saving (%)", "accuracy (raw)", "accuracy (mitigated)"],
        rows,
    )

    # Inside the guardband nothing changes.
    guardband = [p for p in raw if p.region is VoltageRegion.GUARDBAND]
    assert all(p.accuracy >= study.baseline_accuracy - 0.02 for p in guardband)
    # The recommended operating point is below the guardband edge yet keeps
    # accuracy within 1 % -- the paper's "significant power saving even below
    # the voltage guardband region" claim.
    assert operating_point.voltage_v < study.calibration.vmin + 1e-9
    assert operating_point.accuracy >= study.baseline_accuracy - 0.01
    assert operating_point.power_saving_fraction > 0.5
    # Deep in the critical region the raw accuracy eventually degrades, and
    # the mitigation recovers part of it.
    deepest_raw = raw[-1]
    deepest_mitigated = mitigated[-1]
    assert deepest_mitigated.accuracy >= deepest_raw.accuracy - 0.05
