"""Historical perf-trend analytics over the BENCH_*.json corpus.

The perf-regression gate (``harness.py check``) is binary: it trips only
once a gated metric leaves its tolerance band.  This tool watches the
*approach*: it ingests the repo-root ``BENCH_*.json`` corpus plus any
number of historical payload directories (older snapshots of the same
files), builds one time series per ``(bench, tier, metric)``, and renders

* ``benchmarks/results/trends.txt`` -- a sparkline/trend table, one row
  per series, flagging metrics drifting toward their gate margin;
* ``benchmarks/results/trend.html`` -- the same data as a self-contained
  HTML report (inline SVG sparklines, inline JS filter, no external
  assets).

Drift rule per gated metric, against the pinned baseline of its tier::

    margin   = max(tolerance * |baseline|, abs_tolerance)
    consumed = (baseline - value) / margin   (direction ``higher``)
    consumed = (value - baseline) / margin   (direction ``lower``)

``consumed`` is the fraction of the gate margin already eaten by movement
in the *bad* direction; a warning fires at ``--warn-fraction`` (default
0.5) so a slow regression is visible several PRs before the gate trips.

CLI::

    python benchmarks/trend.py [names...] [--history DIR ...]
        [--out-dir benchmarks/results] [--warn-fraction 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

__all__ = [
    "MetricSeries",
    "build_series",
    "drift_warnings",
    "load_payload_dir",
    "main",
    "render_trends_html",
    "render_trends_text",
    "sparkline",
    "DEFAULT_WARN_FRACTION",
]

#: fraction of the gate margin a metric may consume before a drift
#: warning fires (1.0 is where ``harness.py check`` would fail).
DEFAULT_WARN_FRACTION = 0.5

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass
class MetricSeries:
    """One metric's history across payload snapshots.

    Points are ordered oldest first: historical directories in the order
    given, then the current repo-root corpus.
    """

    bench: str
    tier: str
    metric: str
    direction: str
    gate: bool
    #: snapshot labels, parallel to ``values``.
    labels: List[str] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str, str]:
        """The series identity: ``(bench, tier, metric)``."""
        return (self.bench, self.tier, self.metric)

    @property
    def latest(self) -> float:
        """The newest value in the series."""
        return self.values[-1]

    @property
    def change(self) -> Optional[float]:
        """Relative change first -> last; None for single points or zero start."""
        if len(self.values) < 2 or self.values[0] == 0.0:
            return None
        return (self.values[-1] - self.values[0]) / abs(self.values[0])


def sparkline(values: Sequence[float]) -> str:
    """Render a value sequence as a Unicode block sparkline.

    Args:
        values: the series, oldest first.

    Returns:
        One block character per value; constant series render flat at
        mid-height, an empty series renders as an empty string.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_CHARS[3] * len(values)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, int((value - lo) / span * top + 0.5))]
        for value in values
    )


def load_payload_dir(directory: Path) -> Dict[str, Dict[str, Any]]:
    """Read every ``BENCH_*.json`` payload in one directory.

    Args:
        directory: the directory to scan (repo root or a snapshot dir).

    Returns:
        Benchmark name -> parsed payload; unparseable files are skipped
        with a note on stderr rather than failing the whole report.
    """
    payloads: Dict[str, Dict[str, Any]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            payloads[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[trend] skipping {path}: {exc}", file=sys.stderr)
    return payloads


def build_series(
    sources: Sequence[Tuple[str, Mapping[str, Mapping[str, Any]]]],
    names: Optional[Sequence[str]] = None,
) -> Dict[Tuple[str, str, str], MetricSeries]:
    """Fold payload snapshots into per-metric time series.

    Args:
        sources: ``(label, payloads)`` pairs, oldest snapshot first (the
            last pair is normally the current repo-root corpus).
        names: restrict to these benchmark names; None keeps all.

    Returns:
        ``(bench, tier, metric)`` -> series, keys sorted on render.
    """
    series: Dict[Tuple[str, str, str], MetricSeries] = {}
    wanted = set(names) if names else None
    for label, payloads in sources:
        for bench, payload in payloads.items():
            if wanted is not None and bench not in wanted:
                continue
            tier = str(payload.get("tier", "full"))
            records = dict(payload.get("metrics") or {})
            # Table-only benchmarks (the paper-figure reproductions) carry
            # no gated metrics; their harness wall-clock still trends, so
            # every BENCH file contributes at least one series.
            if payload.get("harness_wall_clock_s") is not None:
                records.setdefault(
                    "harness_wall_clock_s",
                    {
                        "value": float(payload["harness_wall_clock_s"]),
                        "direction": "lower",
                        "gate": False,
                    },
                )
            for metric, record in records.items():
                key = (bench, tier, metric)
                entry = series.get(key)
                if entry is None:
                    entry = series[key] = MetricSeries(
                        bench=bench,
                        tier=tier,
                        metric=metric,
                        direction=str(record.get("direction", "higher")),
                        gate=bool(record.get("gate", False)),
                    )
                entry.direction = str(record.get("direction", entry.direction))
                entry.gate = bool(record.get("gate", entry.gate))
                entry.labels.append(label)
                entry.values.append(float(record.get("value", 0.0)))
    return series


def _margin_consumed(
    series: MetricSeries, pinned: Mapping[str, Any], record: Mapping[str, Any]
) -> Optional[float]:
    """Fraction of the gate margin eaten by the series' latest value."""
    base = float(pinned.get("value", 0.0))
    margin = max(
        float(record.get("tolerance", 0.0)) * abs(base),
        float(record.get("abs_tolerance", 0.0)),
    )
    if margin <= 0.0:
        return None
    if series.direction == "higher":
        return (base - series.latest) / margin
    return (series.latest - base) / margin


def drift_warnings(
    series_map: Mapping[Tuple[str, str, str], MetricSeries],
    current: Mapping[str, Mapping[str, Any]],
    baselines_dir: Path = BASELINES_DIR,
    warn_fraction: float = DEFAULT_WARN_FRACTION,
) -> List[str]:
    """Gated metrics whose latest value has eaten too much gate margin.

    Args:
        series_map: output of :func:`build_series`.
        current: the newest payload corpus (benchmark name -> payload) --
            tolerances come from here, so a tolerance change in the
            current run is what the warning respects.
        baselines_dir: directory of pinned baselines.
        warn_fraction: warn once this fraction of the margin is consumed
            (1.0 is the gate boundary itself).

    Returns:
        One human-readable warning line per drifting metric, sorted by
        how much margin is consumed (worst first).
    """
    flagged: List[Tuple[float, str]] = []
    baseline_cache: Dict[str, Optional[Dict[str, Any]]] = {}
    for key in sorted(series_map):
        series = series_map[key]
        if not series.gate:
            continue
        payload = current.get(series.bench)
        if payload is None or payload.get("tier") != series.tier:
            continue
        record = (payload.get("metrics") or {}).get(series.metric)
        if record is None:
            continue
        if series.bench not in baseline_cache:
            path = baselines_dir / f"{series.bench}.json"
            baseline_cache[series.bench] = (
                json.loads(path.read_text()) if path.is_file() else None
            )
        baseline = baseline_cache[series.bench]
        entry = baseline.get(series.tier) if baseline else None
        pinned = (entry or {}).get("metrics", {}).get(series.metric)
        if pinned is None:
            continue
        consumed = _margin_consumed(series, pinned, record)
        if consumed is None or consumed < warn_fraction:
            continue
        state = "WOULD TRIP GATE" if consumed >= 1.0 else "drifting toward gate"
        flagged.append(
            (
                consumed,
                f"{series.bench}:{series.metric} ({series.tier}) {state}: "
                f"{consumed:.0%} of the gate margin consumed "
                f"(latest {series.latest:.6g} vs pinned "
                f"{float(pinned.get('value', 0.0)):.6g}, "
                f"direction {series.direction})",
            )
        )
    flagged.sort(key=lambda item: -item[0])
    return [line for _, line in flagged]


def render_trends_text(
    series_map: Mapping[Tuple[str, str, str], MetricSeries],
    warnings: Sequence[str],
) -> str:
    """Render the trend table (the ``trends.txt`` artefact).

    Args:
        series_map: output of :func:`build_series`.
        warnings: output of :func:`drift_warnings`.

    Returns:
        The full report text, deterministically ordered by series key.
    """
    headers = ("bench", "tier", "metric", "gate", "n", "first", "latest", "Δ", "trend")
    rows: List[Tuple[str, ...]] = []
    for key in sorted(series_map):
        series = series_map[key]
        change = series.change
        rows.append(
            (
                series.bench,
                series.tier,
                series.metric,
                "*" if series.gate else "",
                str(len(series.values)),
                f"{series.values[0]:.6g}",
                f"{series.latest:.6g}",
                f"{change:+.1%}" if change is not None else "-",
                sparkline(series.values),
            )
        )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = ["perf trends (oldest -> latest; * = gated metric)", ""]
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    lines.append("")
    if warnings:
        lines.append(f"drift warnings ({len(warnings)}):")
        lines.extend(f"  ! {line}" for line in warnings)
    else:
        lines.append("drift warnings: none")
    return "\n".join(lines) + "\n"


def _svg_spark(values: Sequence[float], width: int = 120, height: int = 28) -> str:
    """One series as an inline SVG polyline (flat midline when constant)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    n = max(1, len(values) - 1)
    points = []
    for i, value in enumerate(values):
        x = 2 + i * (width - 4) / n
        y = height / 2 if span == 0 else 2 + (height - 4) * (1 - (value - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#5aa9e6" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


_HTML_HEAD = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>perf trends</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
       background: #111418; color: #d7dde4; }
h1 { font-size: 1.1rem; }
input { background: #171c22; color: #d7dde4; border: 1px solid #2c3540;
        padding: .3rem .5rem; border-radius: 4px; margin-bottom: .8rem; }
table { border-collapse: collapse; }
th, td { padding: .25rem .7rem; text-align: left; border-bottom: 1px solid #232b33; }
th { color: #9fb4c7; }
.gated { color: #e8c35a; }
.warn { color: #ef6a6a; }
.warnings { margin: 1rem 0; color: #ef6a6a; }
.ok { color: #5fd38a; }
</style>
</head>
<body>
<h1>perf trends (oldest &#8594; latest)</h1>
<input id="filter" placeholder="filter by bench/metric...">
"""

_HTML_TAIL = """<script>
const filter = document.getElementById("filter");
filter.addEventListener("input", () => {
  const needle = filter.value.toLowerCase();
  for (const row of document.querySelectorAll("tbody tr")) {
    row.style.display = row.textContent.toLowerCase().includes(needle) ? "" : "none";
  }
});
</script>
</body>
</html>
"""


def render_trends_html(
    series_map: Mapping[Tuple[str, str, str], MetricSeries],
    warnings: Sequence[str],
) -> str:
    """Render the trend report as one self-contained HTML document.

    Args:
        series_map: output of :func:`build_series`.
        warnings: output of :func:`drift_warnings`.

    Returns:
        The complete HTML document (inline SVG sparklines + inline JS
        filter, no external assets).
    """

    def esc(text: str) -> str:
        return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")

    parts = [_HTML_HEAD]
    if warnings:
        parts.append('<div class="warnings">')
        parts.append(f"<b>drift warnings ({len(warnings)})</b><br>")
        parts.extend(f"&#9888; {esc(line)}<br>" for line in warnings)
        parts.append("</div>")
    else:
        parts.append('<div class="ok">no drift warnings</div>')
    parts.append(
        "<table><thead><tr><th>bench</th><th>tier</th><th>metric</th>"
        "<th>gate</th><th>n</th><th>first</th><th>latest</th><th>&#916;</th>"
        "<th>trend</th></tr></thead><tbody>"
    )
    warned = {line.split(" ", 1)[0] for line in warnings}
    for key in sorted(series_map):
        series = series_map[key]
        change = series.change
        tag = f"{series.bench}:{series.metric}"
        cls = (
            ' class="warn"'
            if f"{tag} ({series.tier})" in warned
            else (' class="gated"' if series.gate else "")
        )
        parts.append(
            f"<tr{cls}><td>{esc(series.bench)}</td><td>{esc(series.tier)}</td>"
            f"<td>{esc(series.metric)}</td>"
            f"<td>{'*' if series.gate else ''}</td>"
            f"<td>{len(series.values)}</td>"
            f"<td>{series.values[0]:.6g}</td><td>{series.latest:.6g}</td>"
            f"<td>{f'{change:+.1%}' if change is not None else '-'}</td>"
            f"<td>{_svg_spark(series.values)}</td></tr>"
        )
    parts.append("</tbody></table>")
    parts.append(_HTML_TAIL)
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: build the series and write both reports.

    Args:
        argv: argument vector; None uses ``sys.argv[1:]``.

    Returns:
        Process exit code (0 even when drift warnings fire -- the hard
        failure belongs to ``harness.py check``; 1 only when no payload
        at all could be ingested).
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="benchmark names (default: all)")
    parser.add_argument(
        "--history",
        action="append",
        default=[],
        metavar="DIR",
        help="historical payload directory (oldest first; repeatable)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=RESULTS_DIR, help="report output directory"
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory of the current BENCH_*.json corpus",
    )
    parser.add_argument(
        "--baselines-dir",
        type=Path,
        default=BASELINES_DIR,
        help="directory of pinned baselines (for drift margins)",
    )
    parser.add_argument(
        "--warn-fraction",
        type=float,
        default=DEFAULT_WARN_FRACTION,
        help="fraction of the gate margin consumed before warning",
    )
    args = parser.parse_args(argv)

    sources: List[Tuple[str, Dict[str, Dict[str, Any]]]] = []
    for directory in args.history:
        path = Path(directory)
        sources.append((path.name, load_payload_dir(path)))
    current = load_payload_dir(args.bench_dir)
    sources.append(("current", current))

    series_map = build_series(sources, names=args.names or None)
    if not series_map:
        print("[trend] no BENCH payloads found, nothing to report", file=sys.stderr)
        return 1
    warnings = drift_warnings(
        series_map,
        current,
        baselines_dir=args.baselines_dir,
        warn_fraction=args.warn_fraction,
    )

    args.out_dir.mkdir(parents=True, exist_ok=True)
    text = render_trends_text(series_map, warnings)
    (args.out_dir / "trends.txt").write_text(text)
    (args.out_dir / "trend.html").write_text(render_trends_html(series_map, warnings))

    benches = {key[0] for key in series_map}
    print(
        f"[trend] {len(series_map)} series across {len(benches)} benchmark(s) "
        f"-> {args.out_dir / 'trends.txt'}, {args.out_dir / 'trend.html'}"
    )
    for line in warnings:
        print(f"[trend] WARNING: {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
