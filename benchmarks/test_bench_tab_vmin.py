"""TAB-VMIN: per-platform voltage margins and fault rates at Vcrash.

Regenerates the Section III.B text numbers: the voltage margins of VC707,
KC705-A, KC705-B and ZC702 differ slightly (even between the two identical
KC705 samples), and the fault rates at Vcrash are 652 / 254 / 60 / 153
faults/Mbit respectively.
"""

from __future__ import annotations

import pytest

from repro.undervolting.experiment import sweep_all_platforms
from repro.undervolting.platforms import PLATFORMS

PAPER_FAULT_RATES = {"VC707": 652.0, "KC705-A": 254.0, "KC705-B": 60.0, "ZC702": 153.0}


@pytest.mark.benchmark(group="tab-vmin")
def test_tab_vmin_per_platform_margins(benchmark, report_table):
    results = benchmark(sweep_all_platforms, 0.01)

    rows = []
    for name in sorted(results):
        result = results[name]
        rows.append(
            [
                name,
                f"{result.vmin:.2f}",
                f"{result.vcrash:.2f}",
                f"{result.max_faults_per_mbit:.0f}",
                f"{PAPER_FAULT_RATES[name]:.0f}",
                f"{100 * result.max_power_saving_fraction:.0f}",
            ]
        )
    report_table(
        "tab_vmin",
        "Section III.B reproduction -- per-platform voltage margins and fault-rate corners",
        ["platform", "Vmin (V)", "Vcrash (V)", "faults/Mbit @Vcrash", "paper", "max saving (%)"],
        rows,
    )

    for name, result in results.items():
        calibration = PLATFORMS[name]
        assert result.vmin == pytest.approx(calibration.vmin, abs=0.011)
        assert result.vcrash == pytest.approx(calibration.vcrash, abs=0.011)
        assert result.max_faults_per_mbit == pytest.approx(PAPER_FAULT_RATES[name], rel=0.1)
    # The ordering of fault-rate severity across platforms matches the paper.
    observed = {name: results[name].max_faults_per_mbit for name in results}
    assert observed["VC707"] > observed["KC705-A"] > observed["ZC702"] > observed["KC705-B"]
